// Package server is the asyncg analysis service: a long-running HTTP
// front end over the schedule-space exploration engine. Clients submit
// explore jobs (POST /v1/jobs), follow per-run NDJSON progress
// (GET /v1/jobs/{id}/stream — the same line format the CLI's -ndjson
// flag writes), and fetch the final classification
// (GET /v1/jobs/{id}/result).
//
// Jobs execute on a fixed worker pool behind a bounded queue; overflow
// is refused immediately with 429 and a Retry-After hint rather than
// buffered without limit. Every job runs under a context derived from
// the server's base context plus a per-job deadline, so DELETE, client
// disconnects (?wait=1), deadlines, and shutdown all cancel through the
// same path — down to the tick boundaries of the simulated event loops.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"asyncg/internal/explore"
	"asyncg/internal/trace"
)

// Config parameterizes the analysis service.
type Config struct {
	// QueueSize bounds the jobs waiting for a worker; a submission that
	// finds the queue full is refused with 429 + Retry-After. 0 means 8.
	QueueSize int
	// Workers is the number of jobs executed concurrently (each job
	// additionally fans its schedules out per its own spec). 0 means
	// GOMAXPROCS.
	Workers int
	// JobTimeout is the default per-job deadline, and the cap for
	// per-request timeoutMs overrides. 0 means 2 minutes.
	JobTimeout time.Duration
	// MaxFinishedJobs bounds how many terminal jobs (done, cancelled,
	// failed) stay queryable, so a long-running service does not retain
	// every result and stream buffer forever. When a job finishes past
	// the bound, the oldest terminal jobs are evicted — their Result and
	// buffered NDJSON are dropped and later GETs answer 404. Queued and
	// running jobs are never evicted. 0 means 64; negative means
	// unlimited retention.
	MaxFinishedJobs int
	// LookupTarget resolves a job's target spec; nil means
	// explore.TargetByName. Tests inject synthetic (e.g. never-ending)
	// targets here.
	LookupTarget func(string) (explore.Target, error)
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 8
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.MaxFinishedJobs == 0 {
		c.MaxFinishedJobs = 64
	}
	if c.LookupTarget == nil {
		c.LookupTarget = explore.TargetByName
	}
	return c
}

// Server owns the worker pool, the job table, and the HTTP handlers.
// Create with New, serve Handler(), stop with Shutdown.
type Server struct {
	cfg Config
	mux *http.ServeMux

	// baseCtx parents every job context; baseCancel is the hard-stop.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue chan *job
	wg    sync.WaitGroup // worker goroutines

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for stable GET /v1/jobs
	nextID   int
	draining bool
	running  int

	metrics serverMetrics
}

// serverMetrics aggregates across jobs: submission counters plus the
// merged trace snapshot of every metrics-enabled run (the Fig. 6b
// observability surface, accumulated service-wide).
type serverMetrics struct {
	mu        sync.Mutex
	accepted  int64
	rejected  int64
	done      int64
	cancelled int64
	failed    int64
	runs      int64
	// Coverage feedback accumulated across jobs: distinct async-graph
	// fingerprints discovered, final corpus sizes of coverage-strategy
	// jobs, and picks pruned by partial-order reduction.
	newGraphs   int64
	corpusSize  int64
	prunedPicks int64
	snap        trace.Snapshot
}

// New builds the service and starts its worker pool. The pool idles
// until jobs arrive; Shutdown stops it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *job, cfg.QueueSize),
		jobs:       make(map[string]*job),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/targets", s.handleTargets)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler is the service's HTTP interface.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the service: no new submissions are accepted (POST
// returns 503), queued and running jobs are allowed to finish, and the
// call returns when the pool is idle. If ctx expires first, every
// outstanding job is hard-cancelled (they stop at their next simulated
// tick boundary), the pool is still waited for — workers are never
// abandoned — and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-idle
		return ctx.Err()
	}
}

// worker executes queued jobs until the queue is closed and empty.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job under its deadline, streaming NDJSON into the
// job's broadcaster. A panicking target fails the job, never the
// worker.
func (s *Server) runJob(j *job) {
	defer close(j.done)
	defer j.stream.Close()
	defer j.cancel()

	if err := j.ctx.Err(); err != nil {
		// Cancelled while queued (DELETE or hard-stop): nothing ran.
		j.finish(nil, err, time.Now())
		s.metrics.record(j)
		s.evictFinished()
		return
	}
	ctx := j.ctx
	if j.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.timeout)
		defer cancel()
	}

	j.mu.Lock()
	j.status = statusRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.mu.Lock()
	s.running++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
	}()

	stream := explore.NewNDJSONStream(j.stream, j.target.Name)
	opts := append(j.opts, explore.WithProgress(func(rr explore.RunResult) {
		stream.Run(rr) // broadcaster writes cannot fail while the job runs
	}))

	// The engine recovers target panics itself (on every worker of its
	// schedule pool) and returns them as errors; this recover is pure
	// defense in depth for panics outside the run boundary (aggregation,
	// the progress callback), keeping the service worker alive no matter
	// what.
	res, err := func() (res *explore.Result, err error) {
		defer func() {
			if p := recover(); p != nil {
				res, err = nil, fmt.Errorf("target panicked: %v", p)
			}
		}()
		return explore.Run(ctx, j.target, opts...)
	}()
	if res != nil {
		// Classification of the completed prefix flushes even when the
		// job was cancelled — the stream never ends mid-thought.
		stream.Finish(res)
	}
	j.finish(res, err, time.Now())
	s.metrics.record(j)
	s.evictFinished()
}

// evictFinished trims the job table to the retention bound: when more
// than MaxFinishedJobs terminal jobs are held, the oldest are deleted
// (their broadcaster buffers and Results go with them). Called after
// every terminal transition, so the table's footprint is bounded by
// queue capacity + workers + MaxFinishedJobs.
func (s *Server) evictFinished() {
	limit := s.cfg.MaxFinishedJobs
	if limit < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	terminal := 0
	for _, id := range s.order {
		if s.jobs[id].terminal() {
			terminal++
		}
	}
	evict := terminal - limit
	if evict <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if evict > 0 && s.jobs[id].terminal() {
			delete(s.jobs, id)
			evict--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// record folds a finished job into the service-wide aggregates.
func (m *serverMetrics) record(j *job) {
	j.mu.Lock()
	status, res := j.status, j.result
	j.mu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	switch status {
	case statusDone:
		m.done++
	case statusCancelled:
		m.cancelled++
	case statusFailed:
		m.failed++
	}
	if res != nil {
		m.runs += int64(len(res.Runs))
		m.newGraphs += int64(res.NewGraphs)
		m.corpusSize += int64(res.CorpusSize)
		m.prunedPicks += int64(res.PrunedPicks)
		m.snap.Merge(res.Metrics)
	}
}

// buildJob validates a spec and resolves it into a runnable job.
func (s *Server) buildJob(spec jobSpec) (*job, error) {
	tg, err := s.cfg.LookupTarget(spec.Target)
	if err != nil {
		return nil, err
	}
	var strat explore.Strategy
	if spec.Shard != nil {
		// A shard job's walk is fully determined by the shard spec; outer
		// strategy parameters would silently disagree with it, so their
		// presence is an error, not a tiebreak.
		if spec.Strategy != "" || spec.Seed != 0 || spec.DelayBound != 0 || spec.POR {
			return nil, fmt.Errorf("server: shard jobs take strategy/seed/delayBound/por from the shard spec; leave the outer fields unset")
		}
		if spec.Runs != 0 && spec.Runs != spec.Shard.Runs {
			return nil, fmt.Errorf("server: runs %d conflicts with shard window of %d runs", spec.Runs, spec.Shard.Runs)
		}
		spec.Runs = spec.Shard.Runs
		spec.Seed = spec.Shard.Seed
		strat, err = explore.ShardStrategy(*spec.Shard)
	} else {
		strat, err = explore.StrategyFor(spec.Strategy, explore.StrategyParams{
			Seed:       spec.Seed,
			DelayBound: spec.DelayBound,
			POR:        spec.POR,
		})
	}
	if err != nil {
		return nil, err
	}
	kinds, err := explore.ParseKinds(spec.Kinds)
	if err != nil {
		return nil, err
	}
	if spec.Runs < 0 {
		return nil, fmt.Errorf("server: negative runs %d", spec.Runs)
	}
	timeout := s.cfg.JobTimeout
	if spec.TimeoutMs > 0 {
		if t := time.Duration(spec.TimeoutMs) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	opts := []explore.Option{
		explore.WithRuns(spec.Runs),
		explore.WithSeed(spec.Seed),
		explore.WithStrategy(strat),
		explore.WithKinds(kinds...),
		explore.WithWorkers(spec.Workers),
	}
	if !spec.NoMetrics {
		opts = append(opts, explore.WithRunMetrics())
	}
	if spec.Feedback {
		opts = append(opts, explore.WithRunFeedback())
	}
	if spec.Chains {
		opts = append(opts, explore.WithChains())
	}
	if spec.DebugStacks {
		opts = append(opts, explore.WithDebugStacks())
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	return &job{
		spec:    spec,
		target:  tg,
		opts:    opts,
		timeout: timeout,
		ctx:     ctx,
		cancel:  cancel,
		stream:  newBroadcaster(),
		done:    make(chan struct{}),
		status:  statusQueued,
		created: time.Now(),
	}, nil
}

// handleSubmit is POST /v1/jobs: validate, enqueue (or refuse), and
// either return 202 immediately or, with ?wait=1, block until the job
// finishes — cancelling it if the client disconnects first.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobSpec
	dec := json.NewDecoder(r.Body)
	// Unknown fields are refused, and the offending field is named in the
	// response body: a version-skewed fleet coordinator must fail fast,
	// not silently run a default-configured job.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		if field, ok := unknownFieldOf(err); ok {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error": fmt.Sprintf("invalid job spec: unknown field %q", field),
				"field": field,
			})
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid job spec: %v", err))
		return
	}
	j, err := s.buildJob(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Admission happens under the lock so drain (close(queue)) cannot
	// race the send; the send itself never blocks — a full buffered
	// channel is the 429 path, not a wait.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		j.cancel()
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	select {
	case s.queue <- j:
		s.nextID++
		j.id = "job-" + strconv.Itoa(s.nextID)
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		j.cancel()
		s.metrics.mu.Lock()
		s.metrics.rejected++
		s.metrics.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "job queue is full")
		return
	}
	s.metrics.mu.Lock()
	s.metrics.accepted++
	s.metrics.mu.Unlock()

	if r.URL.Query().Get("wait") != "" {
		// Synchronous mode: the client's connection owns the job.
		select {
		case <-j.done:
			writeJSON(w, http.StatusOK, j.snapshotView(true))
		case <-r.Context().Done():
			j.cancel()
			<-j.done // the worker observes the cancel at the next tick boundary
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.snapshotView(false))
}

// handleList is GET /v1/jobs: every job in submission order, without
// embedded results.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]view, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].snapshotView(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
	}
	return j
}

// handleJob is GET /v1/jobs/{id}: full status, with the result embedded
// once the job has finished.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.snapshotView(j.terminal()))
	}
}

// handleCancel is DELETE /v1/jobs/{id}: cancel a queued or running job
// (idempotent). The response reports the status at the time of the
// call; cancellation completes asynchronously at the job's next tick
// boundary.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.snapshotView(false))
}

// handleStream is GET /v1/jobs/{id}/stream: the job's NDJSON, replayed
// from the first line and followed live until the job finishes or the
// client disconnects. The line format is exactly the CLI's -ndjson
// output (explore-run / explore-warning / explore-summary).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flush := func() {}
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	flush()
	j.stream.subscribe(r.Context(), w, flush)
}

// handleResult is GET /v1/jobs/{id}/result: the bare explore.Result
// JSON. Done jobs return their full result; cancelled jobs return the
// completed-prefix partial result; queued/running jobs get 409 and
// failed jobs 500 with the failure message.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	status, res, errMsg := j.status, j.result, j.errMsg
	j.mu.Unlock()
	switch {
	// Failed wins over a partial result: the engine returns the
	// completed-run prefix even on a panic, but a failed job's result
	// endpoint reports the failure, not a fragment that looks complete.
	case status == statusFailed:
		httpError(w, http.StatusInternalServerError, "job failed: "+errMsg)
	case res != nil:
		writeJSON(w, http.StatusOK, res)
	case status == statusCancelled:
		httpError(w, http.StatusInternalServerError, "job cancelled: "+errMsg)
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusConflict, "job is "+string(status)+"; result not ready")
	}
}

// handleTargets is GET /v1/targets: the shared explore registry, the
// same names POST /v1/jobs accepts.
func (s *Server) handleTargets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"targets": explore.Targets()})
}

// handleHealthz reports liveness plus queue pressure and lifetime job
// counts — enough for a fleet coordinator (or load balancer) to probe
// liveness and dispatch capacity-aware. A draining server answers 503 so
// routers stop sending it work.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining, running := s.draining, s.running
	queued := len(s.queue)
	s.mu.Unlock()
	s.metrics.mu.Lock()
	done, cancelled, failed := s.metrics.done, s.metrics.cancelled, s.metrics.failed
	s.metrics.mu.Unlock()
	status, code := "ok", http.StatusOK
	if draining {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"queued":   queued,
		"running":  running,
		"finished": done + cancelled + failed,
		"jobs": map[string]int64{
			"done":      done,
			"cancelled": cancelled,
			"failed":    failed,
		},
		"capacity": s.cfg.QueueSize,
		"workers":  s.cfg.Workers,
	})
}

// handleMetrics is GET /metrics: job counters plus the merged
// trace.Snapshot of every metrics-enabled run the service executed —
// the paper's Fig. 6(b) observability surface, accumulated server-wide.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// The snapshot holds maps the workers keep merging into, so it is
	// serialized under the metrics lock rather than copied out.
	s.metrics.mu.Lock()
	snapJSON, err := json.Marshal(&s.metrics.snap)
	payload := map[string]any{
		"jobs": map[string]int64{
			"accepted":  s.metrics.accepted,
			"rejected":  s.metrics.rejected,
			"done":      s.metrics.done,
			"cancelled": s.metrics.cancelled,
			"failed":    s.metrics.failed,
		},
		"runsExplored": s.metrics.runs,
		"coverage": map[string]int64{
			"newGraphs":   s.metrics.newGraphs,
			"corpusSize":  s.metrics.corpusSize,
			"prunedPicks": s.metrics.prunedPicks,
		},
	}
	s.metrics.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	payload["explore"] = json.RawMessage(snapJSON)
	writeJSON(w, http.StatusOK, payload)
}

// writeJSON encodes v into a buffer before touching the response, so a
// marshal failure can still produce a proper 500 instead of a silently
// truncated body under an already-written success status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("server: encoding %d response: %v", code, err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintln(w, `{"error":"internal: response encoding failed"}`)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := buf.WriteTo(w); err != nil {
		// The status line is already on the wire; a short write means the
		// client went away, which is only worth a log line.
		log.Printf("server: writing %d response: %v", code, err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg})
}

// unknownFieldOf recovers the field name from encoding/json's
// DisallowUnknownFields error ('json: unknown field "xyz"'); the stdlib
// exposes no typed error for it.
func unknownFieldOf(err error) (string, bool) {
	const prefix = `json: unknown field "`
	msg := err.Error()
	if len(msg) > len(prefix)+1 && msg[:len(prefix)] == prefix && msg[len(msg)-1] == '"' {
		return msg[len(prefix) : len(msg)-1], true
	}
	return "", false
}
