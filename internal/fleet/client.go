package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"asyncg/internal/explore"
	"asyncg/internal/trace"
)

// client talks to one asyncg serve worker over its jobs API. Control
// requests (health probe, submit, cancel) run under a per-request
// timeout; the NDJSON stream read runs under the caller's context only,
// since a healthy shard legitimately takes as long as its runs do.
type client struct {
	base    string // worker base URL, no trailing slash
	http    *http.Client
	timeout time.Duration // per control request
}

func newClient(base string, timeout time.Duration) *client {
	return &client{base: strings.TrimRight(base, "/"), http: &http.Client{}, timeout: timeout}
}

// busyError is a 429 refusal; RetryAfter carries the worker's hint.
type busyError struct {
	retryAfter time.Duration
}

func (e *busyError) Error() string {
	return fmt.Sprintf("worker busy (retry after %s)", e.retryAfter)
}

// permanentError marks refusals that retrying cannot fix (a 400 means
// the job spec itself is wrong — version skew, bad shard).
type permanentError struct {
	err error
}

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// health is the /healthz body the coordinator probes before dispatch.
type health struct {
	Status   string `json:"status"`
	Queued   int    `json:"queued"`
	Running  int    `json:"running"`
	Finished int64  `json:"finished"`
	Workers  int    `json:"workers"`
}

// checkHealth probes the worker; an error (or draining status) means
// the worker must not receive the next shard.
func (c *client) checkHealth(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	var h health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h); err != nil {
		return fmt.Errorf("fleet: %s: bad healthz body: %v", c.base, err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		return fmt.Errorf("fleet: %s: unhealthy (%d %s)", c.base, resp.StatusCode, h.Status)
	}
	return nil
}

// jobRequest is the wire shape of a shard submission — a strict subset
// of the server's jobSpec (the server rejects unknown fields, so this
// struct is the compatibility contract).
type jobRequest struct {
	Target      string             `json:"target"`
	Kinds       string             `json:"kinds,omitempty"`
	NoMetrics   bool               `json:"noMetrics,omitempty"`
	Feedback    bool               `json:"feedback,omitempty"`
	DebugStacks bool               `json:"debugStacks,omitempty"`
	TimeoutMs   int64              `json:"timeoutMs,omitempty"`
	Shard       *explore.ShardSpec `json:"shard"`
}

// jobRef is the slice of the submission response the client needs.
type jobRef struct {
	ID     string `json:"id"`
	Status string `json:"status"`
}

// submit POSTs the shard job and returns its id. A full queue surfaces
// as *busyError with the worker's Retry-After hint; a 400 as
// *permanentError.
func (c *client) submit(ctx context.Context, jr jobRequest) (string, error) {
	body, err := json.Marshal(jr)
	if err != nil {
		return "", err
	}
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer drainClose(resp.Body)
	switch resp.StatusCode {
	case http.StatusAccepted:
		var ref jobRef
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&ref); err != nil {
			return "", fmt.Errorf("fleet: %s: bad submit response: %v", c.base, err)
		}
		if ref.ID == "" {
			return "", fmt.Errorf("fleet: %s: submit response without job id", c.base)
		}
		return ref.ID, nil
	case http.StatusTooManyRequests:
		retry := time.Second
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
				retry = time.Duration(secs) * time.Second
			}
		}
		return "", &busyError{retryAfter: retry}
	case http.StatusBadRequest:
		return "", &permanentError{err: fmt.Errorf("fleet: %s rejected the shard: %s", c.base, readError(resp.Body))}
	default:
		return "", fmt.Errorf("fleet: %s: submit status %d: %s", c.base, resp.StatusCode, readError(resp.Body))
	}
}

// cancel best-effort DELETEs a job whose stream the coordinator gave up
// on, so a reassigned shard does not keep burning the old worker.
func (c *client) cancel(jobID string) {
	ctx, cancelCtx := context.WithTimeout(context.Background(), c.timeout)
	defer cancelCtx()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+jobID, nil)
	if err != nil {
		return
	}
	if resp, err := c.http.Do(req); err == nil {
		drainClose(resp.Body)
	}
}

// shardOutput is one completed shard as reported by its worker: the
// locally-indexed run records and the shard's merged metrics snapshot.
type shardOutput struct {
	Runs    []explore.RunResult
	Metrics *trace.Snapshot
}

// wireLine decodes any stream line: kind discriminates, run fields
// arrive through the embedded RunResult, and summary lines additionally
// carry the run count and merged metrics.
type wireLine struct {
	Kind string `json:"kind"`
	explore.RunResult
	SummaryRuns int             `json:"runs"`
	Metrics     *trace.Snapshot `json:"metrics"`
}

// stream follows the job's NDJSON to completion and validates the
// shard's shape: exactly spec.Runs run lines, locally indexed in order,
// closed by an explore-summary. A stream that ends early (worker died,
// job failed or was cancelled) is an error — the caller reassigns.
func (c *client) stream(ctx context.Context, jobID string, spec explore.ShardSpec) (*shardOutput, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+jobID+"/stream", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: %s: stream status %d: %s", c.base, resp.StatusCode, readError(resp.Body))
	}
	out := &shardOutput{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	summarySeen := false
	for sc.Scan() {
		var line wireLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("fleet: %s: bad stream line: %v", c.base, err)
		}
		switch line.Kind {
		case explore.KindRun:
			if line.Index != len(out.Runs) {
				return nil, fmt.Errorf("fleet: %s: run index %d out of order (want %d)", c.base, line.Index, len(out.Runs))
			}
			out.Runs = append(out.Runs, line.RunResult)
		case explore.KindSummary:
			summarySeen = true
			out.Metrics = line.Metrics
			if line.SummaryRuns != spec.Runs {
				return nil, fmt.Errorf("fleet: %s: shard finished with %d/%d runs (job %s)", c.base, line.SummaryRuns, spec.Runs, jobID)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: %s: stream broke mid-shard: %v", c.base, err)
	}
	if !summarySeen {
		return nil, fmt.Errorf("fleet: %s: stream ended without a summary (job %s)", c.base, jobID)
	}
	if len(out.Runs) != spec.Runs {
		return nil, fmt.Errorf("fleet: %s: got %d run lines, want %d (job %s)", c.base, len(out.Runs), spec.Runs, jobID)
	}
	return out, nil
}

// runShard is the per-attempt unit: health probe, submit, stream. On a
// stream failure the job is cancelled best-effort before the error is
// returned for reassignment.
func (c *client) runShard(ctx context.Context, jr jobRequest) (*shardOutput, error) {
	if err := c.checkHealth(ctx); err != nil {
		return nil, err
	}
	jobID, err := c.submit(ctx, jr)
	if err != nil {
		return nil, err
	}
	out, err := c.stream(ctx, jobID, *jr.Shard)
	if err != nil {
		c.cancel(jobID)
		return nil, err
	}
	return out, nil
}

// backoffDelay is the capped exponential schedule for attempt n
// (0-based): base<<n, clamped to cap. A busyError's Retry-After hint
// overrides the schedule when it is longer.
func backoffDelay(n int, base, cap time.Duration, err error) time.Duration {
	d := base << uint(n)
	if d > cap || d <= 0 {
		d = cap
	}
	var busy *busyError
	if errors.As(err, &busy) && busy.retryAfter > d {
		d = busy.retryAfter
	}
	return d
}

// readError extracts the service's {"error": ...} body, falling back to
// the raw text.
func readError(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 1<<16))
	var body struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &body) == nil && body.Error != "" {
		return body.Error
	}
	return strings.TrimSpace(string(b))
}

// drainClose releases the connection for reuse.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	body.Close()
}
