package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"asyncg/internal/explore"
	"asyncg/internal/server"
)

const caseTarget = "case:SO-17894000"

// startWorkers boots n in-process serve workers and returns their base
// URLs.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		svc := server.New(server.Config{QueueSize: 8, Workers: 2})
		ts := httptest.NewServer(svc.Handler())
		t.Cleanup(func() {
			ts.Close()
			svc.Shutdown(context.Background())
		})
		urls[i] = ts.URL
	}
	return urls
}

// singleProcess runs the plan with explore.Run — the reference the
// fleet's merged Result must match byte for byte.
func singleProcess(t *testing.T, p Plan) *explore.Result {
	t.Helper()
	p = p.withDefaults()
	target, err := explore.TargetByName(p.Target)
	if err != nil {
		t.Fatal(err)
	}
	strat, err := explore.StrategyFor(p.Strategy, explore.StrategyParams{
		Seed:       p.Seed,
		DelayBound: p.DelayBound,
		POR:        p.POR,
	})
	if err != nil {
		t.Fatal(err)
	}
	kinds, err := explore.ParseKinds(p.Kinds)
	if err != nil {
		t.Fatal(err)
	}
	opts := []explore.Option{
		explore.WithRuns(p.Runs),
		explore.WithSeed(p.Seed),
		explore.WithStrategy(strat),
		explore.WithKinds(kinds...),
		explore.WithWorkers(2),
	}
	if p.Metrics {
		opts = append(opts, explore.WithRunMetrics())
	}
	if p.Chains {
		opts = append(opts, explore.WithChains())
	}
	res, err := explore.Run(context.Background(), target, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkIdentical(t *testing.T, got, want *explore.Result) {
	t.Helper()
	gj, wj := mustJSON(got), mustJSON(want)
	if !bytes.Equal(gj, wj) {
		t.Errorf("merged result differs from single-process explore.Run\nfleet:  %s\nsingle: %s", gj, wj)
	}
}

// TestFleetMatchesSingleProcess is the acceptance matrix: every
// strategy, POR on and off, at shard widths that do and do not divide
// the budget, against two workers — the merged Result must be
// byte-identical to a single-process run of the same plan.
func TestFleetMatchesSingleProcess(t *testing.T) {
	plans := []Plan{
		{Target: caseTarget, Strategy: explore.StrategyRandom, Seed: 3, Runs: 16},
		{Target: caseTarget, Strategy: explore.StrategyDelay, Seed: 7, Runs: 16, DelayBound: 2},
		{Target: caseTarget, Strategy: explore.StrategyCoverage, Seed: 11, Runs: 40},
		{Target: caseTarget, Strategy: explore.StrategyExhaustive, Seed: 1, Runs: 60, Kinds: "io-order,latency"},
		{Target: caseTarget, Strategy: explore.StrategyExhaustive, Seed: 1, Runs: 60, Kinds: "io-order,latency", POR: true},
	}
	workers := startWorkers(t, 2)
	for _, p := range plans {
		want := singleProcess(t, p)
		for _, width := range []int{1, 5} {
			p := p
			p.ShardRuns = width
			name := fmt.Sprintf("%s-w%d", p.Strategy, width)
			if p.POR {
				name = fmt.Sprintf("%s-por-w%d", p.Strategy, width)
			}
			t.Run(name, func(t *testing.T) {
				var streamed []explore.RunResult
				res, stats, err := Run(context.Background(), Config{
					Plan:    p,
					Workers: workers,
					Dir:     t.TempDir(),
					Progress: func(rr explore.RunResult) {
						streamed = append(streamed, rr)
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				checkIdentical(t, res, want)
				// The progress stream must carry exactly the merged runs in
				// global order — it is what `asyncg fleet -ndjson` emits.
				if !bytes.Equal(mustJSON(streamed), mustJSON(want.Runs)) {
					t.Error("progress stream differs from the single-process run sequence")
				}
				if stats.Resumed != 0 || stats.Dispatched != stats.Shards {
					t.Errorf("fresh run stats: %+v, want everything dispatched", stats)
				}
			})
		}
	}
}

// TestFleetMetrics checks the metrics snapshots merge across shards to
// the same aggregate a single process accumulates run by run.
func TestFleetMetrics(t *testing.T) {
	p := Plan{Target: caseTarget, Strategy: explore.StrategyRandom, Seed: 3, Runs: 12, ShardRuns: 4, Metrics: true}
	want := singleProcess(t, p)
	if want.Metrics == nil {
		t.Fatal("reference run has no metrics snapshot")
	}
	res, _, err := Run(context.Background(), Config{Plan: p, Workers: startWorkers(t, 2), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, res, want)
}

// TestFleetChainsMatchSingleProcess: async causal chains attach after
// the merge, re-derived from witness-token replays, so the fleet's
// classification — chains, witness and counter-witness tokens included —
// must stay byte-identical to a single-process explore.Run of the same
// plan with WithChains.
func TestFleetChainsMatchSingleProcess(t *testing.T) {
	p := Plan{Target: caseTarget, Strategy: explore.StrategyRandom, Seed: 3, Runs: 16, ShardRuns: 5, Chains: true}
	want := singleProcess(t, p)
	chained := 0
	for _, ws := range want.Warnings {
		if len(ws.Chain) > 0 {
			chained++
		}
	}
	if chained == 0 {
		t.Fatal("reference run carries no chains; the equivalence test would prove nothing")
	}
	res, _, err := Run(context.Background(), Config{Plan: p, Workers: startWorkers(t, 2), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, res, want)
}

// TestFleetResumeCompletedJournal re-runs a finished journal: every
// shard must load from disk, none may re-dispatch, and the Result must
// be unchanged.
func TestFleetResumeCompletedJournal(t *testing.T) {
	p := Plan{Target: caseTarget, Strategy: explore.StrategyCoverage, Seed: 11, Runs: 24, ShardRuns: 5}
	workers := startWorkers(t, 2)
	dir := t.TempDir()
	res1, stats1, err := Run(context.Background(), Config{Plan: p, Workers: workers, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res2, stats2, err := Run(context.Background(), Config{Plan: p, Workers: workers, Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Dispatched != 0 || stats2.Resumed != stats1.Shards {
		t.Errorf("resume stats: %+v, want all %d shards resumed", stats2, stats1.Shards)
	}
	checkIdentical(t, res2, res1)
}

// TestFleetResumeAfterCancel kills a coordinator mid-run (context
// cancel once a few runs have streamed) and resumes it: the completed
// shards must load from the journal, the rest re-run, and the final
// Result must match a single-process run.
func TestFleetResumeAfterCancel(t *testing.T) {
	p := Plan{Target: caseTarget, Strategy: explore.StrategyRandom, Seed: 3, Runs: 16, ShardRuns: 2}
	workers := startWorkers(t, 2)
	dir := t.TempDir()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runsSeen := 0
	_, _, err := Run(ctx, Config{
		Plan:    p,
		Workers: workers,
		Dir:     dir,
		Progress: func(explore.RunResult) {
			runsSeen++
			if runsSeen == 4 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}

	res, stats, err := Run(context.Background(), Config{Plan: p, Workers: workers, Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed < 2 {
		t.Errorf("resumed %d shards, want at least the 2 absorbed before the cancel", stats.Resumed)
	}
	if stats.Resumed+stats.Dispatched != stats.Shards {
		t.Errorf("stats don't add up: %+v", stats)
	}
	checkIdentical(t, res, singleProcess(t, p))
}

// TestFleetDeadWorkerReassignment puts a dead URL in the worker pool:
// its shards must fail over to the live worker and the merged Result
// stay correct.
func TestFleetDeadWorkerReassignment(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	p := Plan{Target: caseTarget, Strategy: explore.StrategyRandom, Seed: 3, Runs: 8, ShardRuns: 2}
	live := startWorkers(t, 1)
	res, stats, err := Run(context.Background(), Config{
		Plan:        p,
		Workers:     []string{deadURL, live[0]},
		Dir:         t.TempDir(),
		BackoffBase: time.Millisecond,
		BackoffCap:  20 * time.Millisecond,
		MaxAttempts: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries == 0 {
		t.Error("no retries recorded; the dead worker was never tried")
	}
	checkIdentical(t, res, singleProcess(t, p))
}

// TestFleetAllWorkersDead: with no live worker the run must fail after
// MaxAttempts, keeping the journal for a later resume.
func TestFleetAllWorkersDead(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	p := Plan{Target: caseTarget, Strategy: explore.StrategyRandom, Seed: 3, Runs: 4, ShardRuns: 2}
	dir := t.TempDir()
	_, _, err = Run(context.Background(), Config{
		Plan:        p,
		Workers:     []string{deadURL},
		Dir:         dir,
		BackoffBase: time.Millisecond,
		BackoffCap:  5 * time.Millisecond,
		MaxAttempts: 2,
	})
	if err == nil {
		t.Fatal("run with only a dead worker succeeded")
	}
	if _, err := LoadPlan(dir); err != nil {
		t.Errorf("journal plan unreadable after failure: %v", err)
	}
}

// TestJournalIgnoresIncompleteShard truncates one committed shard file
// (dropping its done line): resume must re-dispatch exactly that shard
// and still produce the identical Result.
func TestJournalIgnoresIncompleteShard(t *testing.T) {
	p := Plan{Target: caseTarget, Strategy: explore.StrategyRandom, Seed: 3, Runs: 12, ShardRuns: 4}
	workers := startWorkers(t, 2)
	dir := t.TempDir()
	res1, stats1, err := Run(context.Background(), Config{Plan: p, Workers: workers, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "shard-0001.ndjson")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	truncated := strings.Join(lines[:len(lines)-1], "\n") + "\n"
	if err := os.WriteFile(path, []byte(truncated), 0o644); err != nil {
		t.Fatal(err)
	}

	res2, stats2, err := Run(context.Background(), Config{Plan: p, Workers: workers, Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Dispatched != 1 || stats2.Resumed != stats1.Shards-1 {
		t.Errorf("resume stats: %+v, want exactly the truncated shard re-dispatched", stats2)
	}
	checkIdentical(t, res2, res1)
}

// TestFleetJournalSafety: a fresh run refuses a directory that already
// holds a journal, and a resume refuses a plan that differs from the
// journaled one.
func TestFleetJournalSafety(t *testing.T) {
	p := Plan{Target: caseTarget, Strategy: explore.StrategyRandom, Seed: 3, Runs: 4, ShardRuns: 2}
	workers := startWorkers(t, 1)
	dir := t.TempDir()
	if _, _, err := Run(context.Background(), Config{Plan: p, Workers: workers, Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(context.Background(), Config{Plan: p, Workers: workers, Dir: dir}); err == nil {
		t.Error("fresh run over an existing journal succeeded, want refusal")
	}
	other := p
	other.Seed = 99
	if _, _, err := Run(context.Background(), Config{Plan: other, Workers: workers, Dir: dir, Resume: true}); err == nil {
		t.Error("resume with a different plan succeeded, want refusal")
	}
}

// TestSubmitErrorClassification checks the client's refusal taxonomy:
// 429 parses Retry-After into a busyError, 400 is permanent.
func TestSubmitErrorClassification(t *testing.T) {
	mode := "busy"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch mode {
		case "busy":
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
		case "bad":
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprint(w, `{"error":"unknown field \"bogus\""}`)
		}
	}))
	defer ts.Close()

	cl := newClient(ts.URL, time.Second)
	spec := explore.ShardSpec{Strategy: explore.StrategyRandom, Runs: 1}
	_, err := cl.submit(context.Background(), jobRequest{Target: caseTarget, Shard: &spec})
	var busy *busyError
	if !errors.As(err, &busy) || busy.retryAfter != 7*time.Second {
		t.Errorf("429 gave %v, want busyError with 7s Retry-After", err)
	}

	mode = "bad"
	_, err = cl.submit(context.Background(), jobRequest{Target: caseTarget, Shard: &spec})
	var perm *permanentError
	if !errors.As(err, &perm) || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("400 gave %v, want permanentError carrying the body", err)
	}
}

// TestBackoffDelay pins the retry schedule: exponential from the base,
// clamped at the cap, overridden by a longer Retry-After hint.
func TestBackoffDelay(t *testing.T) {
	base, cap := 100*time.Millisecond, time.Second
	cases := []struct {
		n    int
		err  error
		want time.Duration
	}{
		{0, nil, 100 * time.Millisecond},
		{1, nil, 200 * time.Millisecond},
		{3, nil, 800 * time.Millisecond},
		{4, nil, time.Second},                                         // clamped
		{70, nil, time.Second},                                        // shift overflow clamps too
		{0, &busyError{retryAfter: 3 * time.Second}, 3 * time.Second}, // hint wins
		{0, &busyError{retryAfter: time.Millisecond}, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := backoffDelay(c.n, base, cap, c.err); got != c.want {
			t.Errorf("backoffDelay(%d, %v) = %v, want %v", c.n, c.err, got, c.want)
		}
	}
}
