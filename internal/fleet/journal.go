package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"asyncg/internal/explore"
)

// The journal is the coordinator's write-ahead state on disk, scoped to
// one directory:
//
//	plan.json        the full Plan, written once before any dispatch
//	                 (atomically: temp file + rename)
//	status.ndjson    append-only shard lifecycle events
//	                 ({"event":"planned|dispatched|done|resumed","shard":N,...})
//	shard-NNNN.ndjson one file per completed shard: a fleet-shard header
//	                 line carrying the ShardSpec, the worker's raw
//	                 explore-run lines (locally indexed, feedback fields
//	                 intact), and a closing fleet-shard-done line with
//	                 the run count and the shard's merged metrics. The
//	                 file is written to a temp name and renamed, so its
//	                 existence with a matching done line IS the commit
//	                 record — a half-written shard never resumes.
//
// Resume replays deterministic planning from plan.json and feeds each
// re-formed shard through the same observe path, loading journaled
// shards instead of dispatching them. The status log is observability
// (and what the smoke test asserts on); the shard files are the truth.

// Journal line kinds (alongside the explore-run lines inside shard files).
const (
	kindShardHeader = "fleet-shard"
	kindShardDone   = "fleet-shard-done"
)

// planFileVersion guards against resuming a journal written by an
// incompatible coordinator.
const planFileVersion = 1

type planFile struct {
	Version int  `json:"version"`
	Plan    Plan `json:"plan"`
}

// statusEvent is one status.ndjson line.
type statusEvent struct {
	Event  string `json:"event"` // planned, dispatched, done, resumed
	Shard  int    `json:"shard"`
	Start  int    `json:"start,omitempty"`
	Runs   int    `json:"runs,omitempty"`
	Worker string `json:"worker,omitempty"`
	Time   string `json:"time,omitempty"`
}

// shardHeaderLine opens a shard file.
type shardHeaderLine struct {
	Kind  string            `json:"kind"`
	Shard int               `json:"shard"`
	Spec  explore.ShardSpec `json:"spec"`
}

// shardDoneLine commits a shard file.
type shardDoneLine struct {
	Kind    string          `json:"kind"`
	Shard   int             `json:"shard"`
	Runs    int             `json:"runs"`
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

// journal manages one coordinator directory.
type journal struct {
	dir    string
	status *os.File
	loaded map[int]*journaledShard // complete shard files found on resume
}

// journaledShard is one shard recovered from disk.
type journaledShard struct {
	spec   explore.ShardSpec
	output *shardOutput
}

// openJournal prepares dir for a run. A fresh run writes plan.json and
// refuses a directory that already has one (resume is explicit, never
// accidental); a resume requires plan.json to exist and match p, and
// loads every complete shard file.
func openJournal(dir string, p Plan, resume bool) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	planPath := filepath.Join(dir, "plan.json")
	j := &journal{dir: dir, loaded: map[int]*journaledShard{}}
	if resume {
		prev, err := readPlan(planPath)
		if err != nil {
			return nil, fmt.Errorf("fleet: resume: %w", err)
		}
		if !prev.equal(p) {
			return nil, fmt.Errorf("fleet: resume: plan in %s does not match (journal: %+v, requested: %+v)", dir, prev, p)
		}
		if err := j.loadShards(); err != nil {
			return nil, err
		}
	} else {
		if _, err := os.Stat(planPath); err == nil {
			return nil, fmt.Errorf("fleet: %s already holds a journal; use resume or a fresh directory", dir)
		}
		if err := writeFileAtomic(planPath, mustJSON(planFile{Version: planFileVersion, Plan: p})); err != nil {
			return nil, err
		}
	}
	status, err := os.OpenFile(filepath.Join(dir, "status.ndjson"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	j.status = status
	return j, nil
}

func (j *journal) close() {
	if j.status != nil {
		j.status.Close()
	}
}

// event appends one status line (a single write, so concurrent readers
// of the file never see a torn line).
func (j *journal) event(e statusEvent) {
	e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	line := append(mustJSON(e), '\n')
	j.status.Write(line)
}

// shardPath names shard idx's result file.
func (j *journal) shardPath(idx int) string {
	return filepath.Join(j.dir, fmt.Sprintf("shard-%04d.ndjson", idx))
}

// commitShard persists a completed shard atomically.
func (j *journal) commitShard(idx int, spec explore.ShardSpec, out *shardOutput) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(shardHeaderLine{Kind: kindShardHeader, Shard: idx, Spec: spec}); err != nil {
		return err
	}
	for _, rr := range out.Runs {
		if err := enc.Encode(struct {
			Kind string `json:"kind"`
			explore.RunResult
		}{Kind: explore.KindRun, RunResult: rr}); err != nil {
			return err
		}
	}
	done := shardDoneLine{Kind: kindShardDone, Shard: idx, Runs: len(out.Runs)}
	if out.Metrics != nil {
		done.Metrics = mustJSON(out.Metrics)
	}
	if err := enc.Encode(done); err != nil {
		return err
	}
	return writeFileAtomic(j.shardPath(idx), buf.Bytes())
}

// take hands out (and consumes) the journaled shard for idx if its spec
// matches; a mismatching spec means the directory belongs to a
// different plan evolution and is a hard error.
func (j *journal) take(idx int, spec explore.ShardSpec) (*shardOutput, error) {
	js, ok := j.loaded[idx]
	if !ok {
		return nil, nil
	}
	delete(j.loaded, idx)
	if !bytes.Equal(mustJSON(js.spec), mustJSON(spec)) {
		return nil, fmt.Errorf("fleet: journaled shard %d was planned as %+v, expected %+v", idx, js.spec, spec)
	}
	return js.output, nil
}

// loadShards reads every complete shard file in the directory.
// Incomplete files (no done line, truncated, count mismatch) are
// ignored — those shards simply re-run.
func (j *journal) loadShards() error {
	paths, err := filepath.Glob(filepath.Join(j.dir, "shard-*.ndjson"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	for _, p := range paths {
		idx, js, ok := readShardFile(p)
		if ok {
			j.loaded[idx] = js
		}
	}
	return nil
}

// readShardFile parses one shard file; ok=false for anything incomplete.
func readShardFile(path string) (int, *journaledShard, bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return 0, nil, false
	}
	var hdr shardHeaderLine
	if json.Unmarshal(sc.Bytes(), &hdr) != nil || hdr.Kind != kindShardHeader {
		return 0, nil, false
	}
	out := &shardOutput{}
	committed := false
	for sc.Scan() {
		var line wireLine
		if json.Unmarshal(sc.Bytes(), &line) != nil {
			return 0, nil, false
		}
		switch line.Kind {
		case explore.KindRun:
			out.Runs = append(out.Runs, line.RunResult)
		case kindShardDone:
			var done shardDoneLine
			if json.Unmarshal(sc.Bytes(), &done) != nil || done.Runs != len(out.Runs) || done.Shard != hdr.Shard {
				return 0, nil, false
			}
			out.Metrics = line.Metrics
			committed = true
		}
	}
	if sc.Err() != nil || !committed || len(out.Runs) != hdr.Spec.Runs {
		return 0, nil, false
	}
	return hdr.Shard, &journaledShard{spec: hdr.Spec, output: out}, true
}

// readPlan loads and version-checks plan.json.
func readPlan(path string) (Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, err
	}
	var pf planFile
	if err := json.Unmarshal(b, &pf); err != nil {
		return Plan{}, fmt.Errorf("parsing %s: %v", path, err)
	}
	if pf.Version != planFileVersion {
		return Plan{}, fmt.Errorf("%s has journal version %d, this coordinator speaks %d", path, pf.Version, planFileVersion)
	}
	return pf.Plan, nil
}

// writeFileAtomic commits data under path via temp file + rename.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
