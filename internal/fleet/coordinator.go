// Package fleet is the distributed exploration coordinator: it fans one
// schedule-space exploration across many asyncg serve workers and
// reassembles their partial results into output byte-identical to a
// single-process explore.Run at the same budget.
//
// The schedule space is sharded deterministically per strategy — seed
// index ranges for random/delay, generation-boundary windows carrying a
// frozen corpus snapshot for coverage, breadth-first replay-token prefix
// ranges for exhaustive — so every shard is a self-contained job any
// worker can execute via the jobs API. The coordinator consumes each
// job's live NDJSON stream, normalizes runs back into global index
// order (recomputing the cross-run NewGraph/corpus/pruning bookkeeping
// that individual workers cannot know), merges the per-shard
// trace.Snapshots with the existing commutative Merge, and re-derives
// the fingerprint/warning/category censuses with explore.Finalize.
//
// Every completed shard is committed to a write-ahead journal before it
// counts, so a killed coordinator resumes from its last completed shard
// (Config.Resume) instead of restarting the exploration.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"time"

	"asyncg/internal/explore"
	"asyncg/internal/trace"
)

// Plan is the deterministic description of one distributed exploration —
// everything the shard planning depends on, and exactly what plan.json
// persists for resume.
type Plan struct {
	// Target is the explore registry spec ("case:SO-17894000",
	// "acmeair:requests=10,...") every worker resolves identically.
	Target string `json:"target"`
	// Strategy names the walk (random, delay, exhaustive, coverage).
	Strategy string `json:"strategy"`
	// Seed is the exploration's base seed.
	Seed int64 `json:"seed,omitempty"`
	// Runs is the global run budget.
	Runs int `json:"runs"`
	// Kinds is the comma-separated choice-kind restriction (empty means
	// the explore defaults).
	Kinds string `json:"kinds,omitempty"`
	// DelayBound caps non-default picks per run (delay strategy).
	DelayBound int `json:"delayBound,omitempty"`
	// POR enables partial-order reduction (exhaustive strategy).
	POR bool `json:"por,omitempty"`
	// ShardRuns is the target shard width in runs (default 8; coverage
	// shards are additionally clipped to generation boundaries and
	// exhaustive shards to the discovered frontier).
	ShardRuns int `json:"shardRuns,omitempty"`
	// Metrics aggregates per-run trace snapshots into Result.Metrics,
	// like explore.WithRunMetrics.
	Metrics bool `json:"metrics,omitempty"`
	// Chains attaches async causal chains to the merged warning
	// classification. The coordinator attaches them locally *after*
	// explore.Finalize — chains are a deterministic function of
	// (target, witness token), so the merged Result stays byte-identical
	// to a single-process explore.Run with WithChains; shard workers
	// never compute chains.
	Chains bool `json:"chains,omitempty"`
	// DebugStacks runs shard schedules and the coordinator's chain
	// replays under creation-stack capture (explore.WithDebugStacks);
	// chain hops then carry creation call sites.
	DebugStacks bool `json:"debugStacks,omitempty"`
}

func (p Plan) withDefaults() Plan {
	if p.Strategy == "" {
		p.Strategy = explore.StrategyRandom
	}
	if p.Runs == 0 {
		p.Runs = 32
	}
	if p.ShardRuns <= 0 {
		p.ShardRuns = 8
	}
	return p
}

func (p Plan) validate() error {
	if p.Target == "" {
		return errors.New("fleet: plan needs a target")
	}
	if p.Runs < 0 {
		return fmt.Errorf("fleet: negative run budget %d", p.Runs)
	}
	if _, err := explore.ParseKinds(p.Kinds); err != nil {
		return err
	}
	switch p.Strategy {
	case explore.StrategyRandom, explore.StrategyDelay, explore.StrategyExhaustive, explore.StrategyCoverage:
		return nil
	default:
		return fmt.Errorf("fleet: unknown strategy %q", p.Strategy)
	}
}

// equal compares plans for the resume check (JSON-normalized, so only
// the persisted planning inputs count).
func (p Plan) equal(other Plan) bool {
	return string(mustJSON(p)) == string(mustJSON(other))
}

// LoadPlan reads a journal directory's plan — how `asyncg fleet -resume`
// recovers the original flags.
func LoadPlan(dir string) (Plan, error) {
	return readPlan(dir + "/plan.json")
}

// Config parameterizes a coordinator run.
type Config struct {
	// Plan is the exploration to distribute.
	Plan Plan
	// Workers lists the serve base URLs ("http://host:port"). At most
	// one shard is in flight per worker entry.
	Workers []string
	// Dir is the journal directory (required).
	Dir string
	// Resume continues the journal already in Dir instead of starting
	// fresh: Plan must match plan.json, and completed shards load from
	// disk instead of re-running.
	Resume bool
	// RequestTimeout bounds each control request (health, submit,
	// cancel); streams run under the exploration context only. 0 = 10s.
	RequestTimeout time.Duration
	// MaxAttempts is the per-shard dispatch attempt budget across
	// workers. 0 = 5.
	MaxAttempts int
	// BackoffBase/BackoffCap shape the capped exponential retry delay
	// (attempt n waits base<<n, clamped to cap; a 429's Retry-After
	// overrides when longer). 0 = 100ms / 5s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Progress, when set, receives every run in global index order —
	// the same contract as explore.WithProgress.
	Progress func(explore.RunResult)
	// Logf, when set, receives coordinator progress lines (dispatches,
	// retries, resumes).
	Logf func(format string, args ...any)
	// LookupTarget resolves Plan.Target for the final aggregation
	// (warning classification needs the target's Expect set); nil means
	// explore.TargetByName.
	LookupTarget func(string) (explore.Target, error)
}

func (c Config) withDefaults() Config {
	c.Plan = c.Plan.withDefaults()
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 5 * time.Second
	}
	if c.LookupTarget == nil {
		c.LookupTarget = explore.TargetByName
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Stats summarizes a coordinator run for reporting and tests.
type Stats struct {
	// Shards is the total number of shards the plan produced.
	Shards int
	// Dispatched counts shards actually sent to workers this run.
	Dispatched int
	// Resumed counts shards loaded from the journal instead of running.
	Resumed int
	// Retries counts failed dispatch attempts that were retried.
	Retries int
}

// shardResult carries one shard's outcome back to the coordinator loop.
type shardResult struct {
	idx     int
	spec    explore.ShardSpec
	out     *shardOutput
	err     error
	retries int
}

// Run executes the plan against the configured workers and returns the
// merged Result. On context cancellation it returns ctx's error with
// the journal intact, so a later Resume run picks up where it stopped.
func Run(ctx context.Context, cfg Config) (*explore.Result, *Stats, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Plan.validate(); err != nil {
		return nil, nil, err
	}
	if len(cfg.Workers) == 0 {
		return nil, nil, errors.New("fleet: no workers configured")
	}
	if cfg.Dir == "" {
		return nil, nil, errors.New("fleet: no journal directory configured")
	}
	target, err := cfg.LookupTarget(cfg.Plan.Target)
	if err != nil {
		return nil, nil, err
	}
	pl, err := plannerFor(cfg.Plan)
	if err != nil {
		return nil, nil, err
	}
	jr, err := openJournal(cfg.Dir, cfg.Plan, cfg.Resume)
	if err != nil {
		return nil, nil, err
	}
	defer jr.close()

	c := &coordinator{cfg: cfg, target: target, planner: pl, journal: jr}
	return c.run(ctx)
}

type coordinator struct {
	cfg     Config
	target  explore.Target
	planner planner
	journal *journal

	slots   chan *client // worker rotation; one in-flight shard per slot
	results chan shardResult

	res   *explore.Result
	stats Stats
	seen  map[string]bool // global fingerprint census, in run order
}

func (c *coordinator) run(ctx context.Context) (*explore.Result, *Stats, error) {
	cfg := c.cfg
	c.slots = make(chan *client, len(cfg.Workers))
	for _, url := range cfg.Workers {
		c.slots <- newClient(url, cfg.RequestTimeout)
	}
	c.results = make(chan shardResult)
	c.seen = make(map[string]bool)
	c.res = &explore.Result{
		Target:    c.target.Name,
		Strategy:  cfg.Plan.Strategy,
		Seed:      cfg.Plan.Seed,
		Requested: cfg.Plan.Runs,
	}

	inFlight := 0
	nextObserve := 0
	pending := make(map[int]shardResult)
	shardCount := 0
	var fatal error

	// drain waits out in-flight dispatches after a failure or cancel, so
	// no goroutine outlives the coordinator.
	drain := func() {
		for inFlight > 0 {
			<-c.results
			inFlight--
		}
	}

	for {
		// progressed records whether this iteration formed or absorbed
		// anything: a feedback-gated planner (coverage, exhaustive) only
		// yields more shards after absorbing, so the loop must circle back
		// to forming — and an iteration with no progress, nothing in
		// flight, and an unfinished plan is a genuine stall.
		progressed := false

		// Form every shard the planner will yield and the worker pool can
		// hold; journaled shards complete instantly, skipping dispatch.
		for inFlight < len(cfg.Workers) {
			spec, ok := c.planner.next()
			if !ok {
				break
			}
			progressed = true
			idx := shardCount
			shardCount++
			c.stats.Shards++
			c.journal.event(statusEvent{Event: "planned", Shard: idx, Start: spec.Start, Runs: spec.Runs})
			if out, err := c.journal.take(idx, spec); err != nil {
				fatal = err
				break
			} else if out != nil {
				c.stats.Resumed++
				c.journal.event(statusEvent{Event: "resumed", Shard: idx, Start: spec.Start, Runs: spec.Runs})
				cfg.Logf("fleet: shard %d [%d,%d) resumed from journal", idx, spec.Start, spec.Start+spec.Runs)
				pending[idx] = shardResult{idx: idx, spec: spec, out: out}
				continue
			}
			c.stats.Dispatched++
			c.journal.event(statusEvent{Event: "dispatched", Shard: idx, Start: spec.Start, Runs: spec.Runs})
			inFlight++
			go c.dispatch(ctx, idx, spec)
		}
		if fatal != nil {
			drain()
			break
		}

		// Absorb completed shards strictly in shard order (= global run
		// order, since windows are consecutive).
		for {
			sr, ok := pending[nextObserve]
			if !ok {
				break
			}
			delete(pending, nextObserve)
			nextObserve++
			progressed = true
			if err := c.absorb(sr); err != nil {
				fatal = err
				break
			}
			c.journal.event(statusEvent{Event: "done", Shard: sr.idx, Start: sr.spec.Start, Runs: sr.spec.Runs})
		}
		if fatal != nil {
			drain()
			break
		}

		if inFlight == 0 {
			if c.planner.done() && len(pending) == 0 {
				break
			}
			if !progressed {
				fatal = errors.New("fleet: planner stalled with no work in flight")
				break
			}
			continue
		}
		select {
		case sr := <-c.results:
			inFlight--
			c.stats.Retries += sr.retries
			if sr.err != nil {
				fatal = sr.err
				drain()
			} else {
				pending[sr.idx] = sr
			}
		case <-ctx.Done():
			fatal = ctx.Err()
			drain()
		}
		if fatal != nil {
			break
		}
	}

	if fatal == nil {
		fatal = ctx.Err()
	}
	if fatal == nil {
		c.res.Exhausted = c.planner.exhausted()
	}
	st := c.planner.stats()
	c.res.CorpusSize = st.CorpusSize
	c.res.PrunedPicks = st.PrunedPicks
	explore.Finalize(c.target, c.res)
	if fatal == nil && c.cfg.Plan.Chains {
		// After Finalize, witness tokens are final; replaying them
		// locally yields the same chains a single-process exploration
		// attaches, keeping the byte-identical merge invariant.
		explore.AttachChains(c.target, c.res, c.cfg.Plan.DebugStacks)
	}
	return c.res, &c.stats, fatal
}

// dispatch runs one shard to completion: worker rotation, capped
// exponential backoff, Retry-After, and reassignment on mid-stream
// death are all here. The journal commit happens before the result is
// reported, so "completed" always means "on disk".
func (c *coordinator) dispatch(ctx context.Context, idx int, spec explore.ShardSpec) {
	req := jobRequest{
		Target:      c.cfg.Plan.Target,
		Kinds:       c.cfg.Plan.Kinds,
		NoMetrics:   !c.cfg.Plan.Metrics,
		DebugStacks: c.cfg.Plan.DebugStacks,
		// The exhaustive planner expands the frontier from each run's
		// choice-point recording; other strategies keep the wire lean.
		Feedback: spec.Strategy == explore.StrategyExhaustive,
		Shard:    &spec,
	}
	sr := shardResult{idx: idx, spec: spec}
	for attempt := 0; ; attempt++ {
		var cl *client
		select {
		case cl = <-c.slots:
		case <-ctx.Done():
			sr.err = ctx.Err()
			c.results <- sr
			return
		}
		out, err := cl.runShard(ctx, req)
		c.slots <- cl // rotation: the next attempt prefers a different worker
		if err == nil {
			if err := c.journal.commitShard(idx, spec, out); err != nil {
				sr.err = fmt.Errorf("fleet: journaling shard %d: %w", idx, err)
				c.results <- sr
				return
			}
			sr.out = out
			c.results <- sr
			return
		}
		var perm *permanentError
		if errors.As(err, &perm) || ctx.Err() != nil || attempt+1 >= c.cfg.MaxAttempts {
			sr.err = fmt.Errorf("fleet: shard %d [%d,%d) failed after %d attempt(s): %w",
				idx, spec.Start, spec.Start+spec.Runs, attempt+1, err)
			c.results <- sr
			return
		}
		sr.retries++
		delay := backoffDelay(attempt, c.cfg.BackoffBase, c.cfg.BackoffCap, err)
		c.cfg.Logf("fleet: shard %d attempt %d on %s failed (%v); retrying in %s", idx, attempt+1, cl.base, err, delay)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			sr.err = ctx.Err()
			c.results <- sr
			return
		}
	}
}

// absorb folds one completed shard into the global result, run by run in
// local order: assert the worker's indices, re-index into global order,
// recompute the cross-run feedback (NewGraph against the global census),
// feed the planner, stamp the planner's running stats, and strip the
// wire-only feedback fields — after which each RunResult is exactly what
// the single-process coordinator would have emitted.
func (c *coordinator) absorb(sr shardResult) error {
	for j, rr := range sr.out.Runs {
		if rr.Index != j {
			return fmt.Errorf("fleet: shard %d run %d arrived with local index %d", sr.idx, j, rr.Index)
		}
		rr.Index = sr.spec.Start + j
		rr.NewGraph = false
		if !c.seen[rr.Fingerprint] {
			c.seen[rr.Fingerprint] = true
			rr.NewGraph = true
		}
		rr.NewGraphs = len(c.seen)
		c.planner.observe(rr)
		st := c.planner.stats()
		rr.CorpusSize = st.CorpusSize
		rr.PrunedPicks = st.PrunedPicks
		rr.Domains, rr.Independent = nil, nil
		c.res.Runs = append(c.res.Runs, rr)
		if c.cfg.Progress != nil {
			c.cfg.Progress(rr)
		}
	}
	if sr.out.Metrics != nil && c.cfg.Plan.Metrics {
		if c.res.Metrics == nil {
			c.res.Metrics = &trace.Snapshot{}
		}
		c.res.Metrics.Merge(sr.out.Metrics)
	}
	return nil
}
