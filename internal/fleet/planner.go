package fleet

import (
	"fmt"

	"asyncg/internal/explore"
)

// A planner is the fleet-side mirror of an explore.Strategy, operating
// at shard granularity instead of run granularity: it cuts the global
// run sequence [0, Plan.Runs) into ShardSpecs a remote worker can
// execute independently, and consumes per-run feedback — strictly in
// global run-index order, exactly like Strategy.Observe — to unlock the
// shards that depend on it (the coverage corpus snapshot, the
// exhaustive frontier).
//
// The invariant every planner upholds: concatenating its shards' runs
// in shard order reproduces the single-process strategy's run sequence
// pick-for-pick. The coordinator layers the cross-run bookkeeping (new
// fingerprints, corpus/pruning stats) on top, so the merged Result is
// byte-identical to explore.Run at the same budget.
type planner interface {
	// next forms the next shard. ok=false means no shard can be formed
	// right now: either the plan is complete (done() is true) or the
	// planner is gated on feedback from dispatched runs.
	next() (spec explore.ShardSpec, ok bool)
	// done reports that every shard has been formed (no future next()
	// will succeed).
	done() bool
	// observe consumes one completed run's feedback, in global run-index
	// order. The RunResult carries the coordinator-normalized NewGraph
	// flag, and — for the exhaustive planner — the Domains/Independent
	// recording requested via the job's feedback field.
	observe(rr explore.RunResult)
	// exhausted reports that the schedule space was fully enumerated
	// within the budget (exhaustive planner only).
	exhausted() bool
	// stats mirrors explore.CoverageReporter: the corpus size / pruned
	// picks after the most recent observe.
	stats() explore.CoverageStats
}

// plannerFor builds the planner for a validated Plan.
func plannerFor(p Plan) (planner, error) {
	switch p.Strategy {
	case explore.StrategyRandom, explore.StrategyDelay:
		return &staticPlanner{plan: p}, nil
	case explore.StrategyCoverage:
		return &coveragePlanner{plan: p}, nil
	case explore.StrategyExhaustive:
		return newExhaustivePlanner(p), nil
	default:
		return nil, fmt.Errorf("fleet: unknown strategy %q", p.Strategy)
	}
}

// staticPlanner shards the feedback-free strategies (random, delay):
// run i depends only on seed+i, so the whole plan is a fixed set of
// consecutive index windows, all formable upfront.
type staticPlanner struct {
	plan      Plan
	nextStart int
}

func (s *staticPlanner) next() (explore.ShardSpec, bool) {
	if s.nextStart >= s.plan.Runs {
		return explore.ShardSpec{}, false
	}
	n := s.plan.ShardRuns
	if rest := s.plan.Runs - s.nextStart; rest < n {
		n = rest
	}
	spec := explore.ShardSpec{
		Strategy: s.plan.Strategy,
		Seed:     s.plan.Seed,
		Start:    s.nextStart,
		Runs:     n,
	}
	if s.plan.Strategy == explore.StrategyDelay {
		spec.DelayBound = s.plan.DelayBound
	}
	s.nextStart += n
	return spec, true
}

func (s *staticPlanner) done() bool                   { return s.nextStart >= s.plan.Runs }
func (s *staticPlanner) observe(explore.RunResult)    {}
func (s *staticPlanner) exhausted() bool              { return false }
func (s *staticPlanner) stats() explore.CoverageStats { return explore.CoverageStats{} }

// coveragePlanner shards the coverage strategy along its generation
// boundaries: generation g (CoverageGenerationSize runs) plans against
// exactly the corpus discovered by generations < g, so a generation's
// shards all carry the same frozen corpus snapshot and a new generation
// only opens once every earlier run has been observed — the same gate
// coverageStrategy.Plan enforces in-process with PlanWait.
type coveragePlanner struct {
	plan      Plan
	corpus    []string // replay tokens of every NewGraph run observed, in order
	genCorpus []string // the snapshot frozen for the generation being cut
	curGen    int      // generation genCorpus belongs to; -1 before the first shard
	nextStart int
	observed  int
}

func (c *coveragePlanner) next() (explore.ShardSpec, bool) {
	if c.nextStart >= c.plan.Runs {
		return explore.ShardSpec{}, false
	}
	const gen = explore.CoverageGenerationSize
	g := c.nextStart / gen
	if c.observed < g*gen {
		// The generation's corpus is still being decided by in-flight
		// runs; forming its shards now would freeze a premature snapshot.
		return explore.ShardSpec{}, false
	}
	if c.genCorpus == nil || g != c.curGen {
		// First shard of generation g: observe has delivered exactly the
		// runs of generations < g, so the accumulated corpus IS the
		// snapshot the in-process strategy would record at this boundary.
		c.genCorpus = append([]string{}, c.corpus...)
		c.curGen = g
	}
	n := c.plan.ShardRuns
	if genRest := (g+1)*gen - c.nextStart; genRest < n {
		n = genRest
	}
	if rest := c.plan.Runs - c.nextStart; rest < n {
		n = rest
	}
	spec := explore.ShardSpec{
		Strategy: explore.StrategyCoverage,
		Seed:     c.plan.Seed,
		Start:    c.nextStart,
		Runs:     n,
		Corpus:   c.genCorpus,
	}
	c.nextStart += n
	return spec, true
}

func (c *coveragePlanner) done() bool { return c.nextStart >= c.plan.Runs }

func (c *coveragePlanner) observe(rr explore.RunResult) {
	if rr.NewGraph {
		c.corpus = append(c.corpus, rr.Token)
	}
	c.observed++
}

func (c *coveragePlanner) exhausted() bool { return false }

func (c *coveragePlanner) stats() explore.CoverageStats {
	return explore.CoverageStats{CorpusSize: len(c.corpus)}
}

// exhaustivePlanner owns the breadth-first frontier the in-process
// exhaustive strategy keeps, but ships it as replay-token prefix ranges:
// each observed run's choice-point recording (Domains/Independent, the
// job-level feedback option) exposes its unvisited siblings, which are
// appended to the queue in exactly exhaustiveStrategy.Observe's order.
// A prefix always ends in its last non-zero pick and playback pads with
// defaults, so Schedule.Token round-trips it losslessly.
type exhaustivePlanner struct {
	plan       Plan
	queue      [][]int  // discovered prefixes, BFS order
	tokens     []string // queue entries as replay tokens
	dispatched int      // runs handed out in formed shards
	observed   int      // runs fed back
	pruned     int      // sibling picks POR skipped
}

func newExhaustivePlanner(p Plan) *exhaustivePlanner {
	return &exhaustivePlanner{
		plan:   p,
		queue:  [][]int{nil},
		tokens: []string{explore.Schedule{}.Token()},
	}
}

// limit is how much of the discovered queue the budget admits.
func (e *exhaustivePlanner) limit() int {
	if len(e.queue) < e.plan.Runs {
		return len(e.queue)
	}
	return e.plan.Runs
}

func (e *exhaustivePlanner) next() (explore.ShardSpec, bool) {
	limit := e.limit()
	if e.dispatched >= limit {
		return explore.ShardSpec{}, false
	}
	n := e.plan.ShardRuns
	if rest := limit - e.dispatched; rest < n {
		n = rest
	}
	spec := explore.ShardSpec{
		Strategy: explore.StrategyExhaustive,
		Start:    e.dispatched,
		Runs:     n,
		Prefixes: append([]string{}, e.tokens[e.dispatched:e.dispatched+n]...),
	}
	e.dispatched += n
	return spec, true
}

// done: every dispatched run was observed and the frontier (as admitted
// by the budget) has no undispatched entries — mirroring the PlanDone
// condition of the in-process strategy.
func (e *exhaustivePlanner) done() bool {
	return e.observed == e.dispatched && e.dispatched == e.limit()
}

func (e *exhaustivePlanner) observe(rr explore.RunResult) {
	prefix := e.queue[rr.Index]
	// The replay token trims trailing default picks; pad back to the
	// recording's length so child prefixes copy true positions.
	sched, err := explore.ParseToken(rr.Token)
	if err != nil {
		// The coordinator validated the token when the run line arrived;
		// an unparseable one here is a programming error.
		panic(fmt.Sprintf("fleet: invalid run token %q: %v", rr.Token, err))
	}
	picks := make([]int, len(rr.Domains))
	copy(picks, sched.Picks)
	for pos := len(prefix); pos < len(rr.Domains); pos++ {
		if e.plan.POR && pos < len(rr.Independent) && rr.Independent[pos] {
			e.pruned += rr.Domains[pos] - 1
			continue
		}
		for v := 1; v < rr.Domains[pos]; v++ {
			child := make([]int, pos+1)
			copy(child, picks[:pos])
			child[pos] = v
			e.queue = append(e.queue, child)
			e.tokens = append(e.tokens, explore.Schedule{Picks: child}.Token())
		}
	}
	e.observed++
}

func (e *exhaustivePlanner) exhausted() bool { return e.observed == len(e.queue) }

func (e *exhaustivePlanner) stats() explore.CoverageStats {
	return explore.CoverageStats{PrunedPicks: e.pruned}
}
