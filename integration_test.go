package asyncg_test

// End-to-end integration: one program exercising every substrate — HTTP
// over the virtual network, the document DB, the file system, timers,
// emitters, promises with async/await, and shared cells — under full
// AsyncG instrumentation. The assertions check both the program's
// behaviour and the completeness of the resulting Async Graph.

import (
	"strings"
	"testing"
	"time"

	"asyncg"
	"asyncg/internal/asyncgraph"
	"asyncg/internal/detect"
	"asyncg/internal/loc"
	"asyncg/internal/mongosim"
)

func TestFullStackIntegration(t *testing.T) {
	session := asyncg.New()
	var audit []string

	report, err := session.Run(func(ctx *asyncg.Context) {
		// A tiny "inventory service": HTTP front end, DB for stock,
		// fs for an audit log, a cell for the last-seen order id.
		stock := ctx.DB().C("stock")
		stock.InsertSync(mongosim.Document{"sku": "widget", "qty": 10})
		ctx.FS().Seed("/audit.log", nil)
		lastOrder := ctx.NewCell("lastOrder", asyncg.Undefined)

		events := ctx.NewEmitter("orders")
		ctx.On(events, "placed", asyncg.F("onPlaced", func(args []asyncg.Value) asyncg.Value {
			audit = append(audit, "placed:"+args[0].(string))
			return asyncg.Undefined
		}))

		srv := ctx.CreateServer(asyncg.F("router", func(args []asyncg.Value) asyncg.Value {
			req := args[0].(*asyncg.IncomingMessage)
			res := args[1].(*asyncg.ServerResponse)
			// Handler written in async/await style over the DB promise
			// interface.
			handled := ctx.Async("handleOrder", func(aw *asyncg.Awaiter) asyncg.Value {
				doc := ctx.Await(aw, stock.FindOneP(loc.Here(), `sku == "widget"`))
				qty := doc.(mongosim.Document)["qty"].(int)
				if qty <= 0 {
					res.WriteHead(409).EndString(loc.Here(), "out of stock")
					return asyncg.Undefined
				}
				ctx.Await(aw, stock.UpdateP(loc.Here(), `sku == "widget"`, mongosim.Document{"qty": qty - 1}))
				ctx.CellSet(lastOrder, req.Path)
				ctx.Emit(events, "placed", req.Path)
				ctx.FS().AppendFile(loc.Here(), "/audit.log", []byte(req.Path+"\n"), nil)
				res.EndString(loc.Here(), "ordered")
				return asyncg.Undefined
			})
			ctx.Catch(handled, asyncg.F("orderErr", func(args []asyncg.Value) asyncg.Value {
				res.WriteHead(500).EndString(loc.Here(), asyncg.F("x", nil).Name)
				return asyncg.Undefined
			}))
			return asyncg.Undefined
		}))
		if err := ctx.ListenHTTP(srv, 9000); err != nil {
			t.Error(err)
			return
		}

		// Three sequential orders, then a final audit read.
		var place func(k int)
		place = func(k int) {
			if k == 0 {
				ctx.SetTimeout(asyncg.F("readAudit", func(args []asyncg.Value) asyncg.Value {
					ctx.FS().ReadFile(loc.Here(), "/audit.log", asyncg.F("auditRead",
						func(args []asyncg.Value) asyncg.Value {
							audit = append(audit, "log:"+strings.TrimSpace(string(args[1].([]byte))))
							return asyncg.Undefined
						}))
					return asyncg.Undefined
				}), 5*time.Millisecond)
				return
			}
			ctx.HTTPRequest(asyncg.RequestOptions{
				Port: 9000, Method: "POST", Path: "/order/" + string(rune('a'+k)),
			}, asyncg.F("orderResp", func(args []asyncg.Value) asyncg.Value {
				if code := args[0].(*asyncg.IncomingMessage).StatusCode; code != 200 {
					t.Errorf("order status = %d", code)
				}
				place(k - 1)
				return asyncg.Undefined
			}))
		}
		place(3)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Uncaught) != 0 {
		t.Fatalf("uncaught: %v", report.Uncaught)
	}
	if len(report.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", report.Anomalies)
	}

	// Behaviour: three orders audited in sequence, log line present.
	joined := strings.Join(audit, "|")
	for _, want := range []string{"placed:/order/d", "placed:/order/c", "placed:/order/b", "log:/order/d"} {
		if !strings.Contains(joined, want) {
			t.Errorf("audit missing %q: %v", want, audit)
		}
	}

	// Graph completeness: every node kind, every phase family involved.
	stats := report.Graph.ComputeStats()
	for _, kind := range []string{"CR", "CE", "CT", "OB"} {
		if stats.ByKind[kind] == 0 {
			t.Errorf("no %s nodes in the integration graph", kind)
		}
	}
	for _, phase := range []string{"main", "nextTick", "promise", "timer", "io", "close"} {
		if stats.ByPhase[phase] == 0 {
			t.Errorf("no %s ticks in the integration graph (phases: %v)", phase, stats.ByPhase)
		}
	}
	// The async/await machinery left await registrations in the graph.
	sawAwait := false
	for _, n := range report.Graph.Nodes {
		if n.Kind == asyncgraph.CR && n.API == "await" {
			sawAwait = true
		}
	}
	if !sawAwait {
		t.Error("no await registrations recorded")
	}

	// No unexpected warnings on a healthy program: dead-emit /
	// recursive / mixing categories must be absent.
	for _, cat := range []detect.Category{detect.CatDeadEmit, detect.CatRecursiveMicrotask, detect.CatMixedAPIs} {
		if report.HasWarning(cat) {
			t.Errorf("unexpected %s warning: %v", cat, report.WarningsOf(cat))
		}
	}
	// The race detector *does* flag the lastOrder cell: the three
	// handler executions are serialized only by the client's
	// request-response loop, which a server-side tool cannot see (the
	// paper's tool observes one process) — from the server's Async
	// Graph their order genuinely depends on I/O timing. This is the
	// correct conservative verdict for cross-request shared state.
	if !report.HasWarning("event-race") {
		t.Error("expected the cross-request shared-state race to be flagged")
	}
}
