// Package asyncg is the public facade of the AsyncG reproduction: it
// assembles the simulated Node.js runtime (event loop, timers, promises,
// emitters, network, HTTP, database) with the Async Graph builder and
// the automatic bug detectors, exactly the tool pipeline of the paper
// "Reasoning about the Node.js Event Loop using Async Graphs" (CGO'19).
//
// Typical use:
//
//	session := asyncg.New(asyncg.Options{})
//	report, err := session.Run(func(ctx *asyncg.Context) {
//	    ctx.NextTick(asyncg.F("hello", func(args []asyncg.Value) asyncg.Value {
//	        fmt.Println("hello from the nextTick queue")
//	        return asyncg.Undefined
//	    }))
//	})
//	fmt.Print(report.Graph.DOT("hello"))
//	for _, w := range report.Warnings { fmt.Println(w) }
package asyncg

import (
	"asyncg/internal/asyncgraph"
	"asyncg/internal/detect"
	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/mongosim"
	"asyncg/internal/netio"
	"asyncg/internal/vm"
)

// Value is the runtime's dynamic value type.
type Value = vm.Value

// Undefined is the runtime's "no value" value.
var Undefined = vm.Undefined

// F creates a callback function value named name, capturing the caller's
// source location for Async Graph labels.
func F(name string, impl func(args []Value) Value) *vm.Function {
	return vm.NewFuncAt(name, loc.Caller(0), impl)
}

// Throw raises a simulated JavaScript exception.
func Throw(v Value) { vm.ThrowAt(v, loc.Caller(0)) }

// Options configures a Session.
type Options struct {
	// Loop configures the event-loop simulator (tick/time limits,
	// virtual costs).
	Loop eventloop.Options
	// Graph configures what the Async Graph builder tracks; zero value
	// means track everything.
	Graph asyncgraph.Config
	// Detect configures the bug detectors; zero value means all
	// detectors with the paper's thresholds.
	Detect detect.Config
	// DisableTool runs the program without AsyncG attached (the
	// "baseline" setting of the paper's overhead evaluation).
	DisableTool bool
	// Network configures the simulated network.
	Network netio.Options
	// DB configures the simulated database.
	DB mongosim.Options
}

// Report is the outcome of a Session run.
type Report struct {
	// Graph is the Async Graph built during the run (nil when the tool
	// was disabled).
	Graph *asyncgraph.Graph
	// Warnings are the detector findings, online and post-hoc.
	Warnings []asyncgraph.Warning
	// Uncaught lists exceptions that escaped top-level callbacks.
	Uncaught []eventloop.UncaughtError
	// Ticks is the number of top-level callback executions.
	Ticks int
	// Anomalies lists context-validator mismatches (should be empty).
	Anomalies []string
}

// WarningsOf filters the report's warnings by category.
func (r *Report) WarningsOf(category string) []asyncgraph.Warning {
	var out []asyncgraph.Warning
	for _, w := range r.Warnings {
		if w.Category == category {
			out = append(out, w)
		}
	}
	return out
}

// HasWarning reports whether any warning of the category was found.
func (r *Report) HasWarning(category string) bool { return len(r.WarningsOf(category)) > 0 }

// Session owns one runtime instance plus the attached tool.
type Session struct {
	opts     Options
	loop     *eventloop.Loop
	builder  *asyncgraph.Builder
	analyzer *detect.Analyzer
	ctx      *Context
}

// New creates a session. The zero Options enable full tracking and all
// detectors.
func New(opts Options) *Session {
	if !opts.DisableTool {
		zero := asyncgraph.Config{}
		if opts.Graph == zero {
			opts.Graph = asyncgraph.DefaultConfig()
		}
		zeroD := detect.Config{}
		if opts.Detect == zeroD {
			opts.Detect = detect.DefaultConfig()
		}
	}
	s := &Session{opts: opts, loop: eventloop.New(opts.Loop)}
	if !opts.DisableTool {
		s.builder = asyncgraph.NewBuilder(opts.Graph)
		s.analyzer = detect.NewAnalyzer(s.builder, opts.Detect)
		// Order matters: the builder must see each event first so the
		// analyzer can annotate the nodes it creates.
		s.loop.Probes().Attach(s.builder)
		s.loop.Probes().Attach(s.analyzer)
	}
	s.ctx = newContext(s.loop, opts)
	return s
}

// Loop exposes the underlying event loop (e.g. to attach extra hooks).
func (s *Session) Loop() *eventloop.Loop { return s.loop }

// Disable detaches AsyncG's hooks at runtime — the tool is pluggable and
// "once disabled, introduces no overhead". Callable from inside
// callbacks; events while disabled are simply not observed.
func (s *Session) Disable() {
	if s.builder != nil {
		s.loop.Probes().Detach(s.builder)
	}
	if s.analyzer != nil {
		s.loop.Probes().Detach(s.analyzer)
	}
}

// Enable re-attaches AsyncG's hooks. The builder resynchronizes its
// shadow stack at the next tick boundary, as the paper describes for
// mid-run activation.
func (s *Session) Enable() {
	if s.builder != nil {
		s.loop.Probes().Attach(s.builder)
	}
	if s.analyzer != nil {
		s.loop.Probes().Attach(s.analyzer)
	}
}

// Context exposes the runtime API bundle without running (advanced use).
func (s *Session) Context() *Context { return s.ctx }

// Run executes program as the main tick and processes the event loop to
// completion (or to a configured limit, returned as the error — the
// report is still valid in that case, covering the truncated prefix).
func (s *Session) Run(program func(ctx *Context)) (*Report, error) {
	main := vm.NewFuncAt("main", loc.Caller(0), func([]Value) Value {
		program(s.ctx)
		return Undefined
	})
	err := s.loop.Run(main)
	report := &Report{
		Uncaught: s.loop.Uncaught(),
		Ticks:    s.loop.Tick(),
	}
	if s.builder != nil {
		report.Graph = s.builder.Graph()
		report.Anomalies = s.builder.Anomalies()
	}
	if s.analyzer != nil {
		report.Warnings = s.analyzer.Finish()
	}
	return report, err
}
