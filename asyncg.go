// Package asyncg is the public facade of the AsyncG reproduction: it
// assembles the simulated Node.js runtime (event loop, timers, promises,
// emitters, network, HTTP, database) with the Async Graph builder and
// the automatic bug detectors, exactly the tool pipeline of the paper
// "Reasoning about the Node.js Event Loop using Async Graphs" (CGO'19).
//
// Typical use:
//
//	session := asyncg.New()
//	report, err := session.Run(func(ctx *asyncg.Context) {
//	    ctx.NextTick(asyncg.F("hello", func(args []asyncg.Value) asyncg.Value {
//	        fmt.Println("hello from the nextTick queue")
//	        return asyncg.Undefined
//	    }))
//	})
//	fmt.Print(report.Graph.DOT("hello"))
//	for _, w := range report.Warnings { fmt.Println(w) }
//
// Sessions are configured with functional options:
//
//	session := asyncg.New(
//	    asyncg.WithLoop(eventloop.Options{TickLimit: 1000}),
//	    asyncg.WithTrace(traceFile, asyncg.TraceChrome),
//	    asyncg.WithMetrics(),
//	)
package asyncg

import (
	"context"
	"io"

	"asyncg/internal/asyncgraph"
	"asyncg/internal/detect"
	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/mongosim"
	"asyncg/internal/netio"
	"asyncg/internal/trace"
	"asyncg/internal/vm"
)

// Value is the runtime's dynamic value type.
type Value = vm.Value

// Undefined is the runtime's "no value" value.
var Undefined = vm.Undefined

// F creates a callback function value named name, capturing the caller's
// source location for Async Graph labels.
func F(name string, impl func(args []Value) Value) *vm.Function {
	return vm.NewFuncAt(name, loc.Caller(0), impl)
}

// Throw raises a simulated JavaScript exception.
func Throw(v Value) { vm.ThrowAt(v, loc.Caller(0)) }

// TraceFormat selects the serialization of a trace stream.
type TraceFormat = trace.Format

// Re-exported trace formats for WithTrace.
const (
	// TraceNDJSON streams one JSON event per line.
	TraceNDJSON = trace.FormatNDJSON
	// TraceChrome writes a Chrome trace_event array for
	// chrome://tracing / Perfetto.
	TraceChrome = trace.FormatChrome
)

// config is the resolved session configuration built by Options.
type config struct {
	loop        eventloop.Options
	graph       asyncgraph.Config
	graphSet    bool
	det         detect.Config
	detSet      bool
	disabled    bool
	network     netio.Options
	db          mongosim.Options
	traceW      io.Writer
	traceFmt    TraceFormat
	traceCfg    trace.ExporterConfig
	traceOn     bool
	metricsOn   bool
	sched       eventloop.Scheduler
	interrupt   func() error
	debugStacks bool
}

// Option configures a Session. Options are applied in order; later
// options win.
type Option func(*config)

// WithLoop configures the event-loop simulator (tick/time limits,
// virtual costs).
func WithLoop(opts eventloop.Options) Option {
	return func(c *config) { c.loop = opts }
}

// WithScheduler installs a schedule-exploration scheduler on the event
// loop (see eventloop.Scheduler and the explore package). It composes
// with WithLoop regardless of option order: the scheduler is merged into
// the loop options when the session is built.
func WithScheduler(s eventloop.Scheduler) Option {
	return func(c *config) { c.sched = s }
}

// WithContext bounds the run by ctx: the event loop polls ctx.Err at
// every tick boundary and Session.Run returns it (context.Canceled or
// context.DeadlineExceeded) as the run error once it fires, with the
// report covering the truncated prefix. A nil or never-cancelled context
// changes nothing — the check does not perturb scheduling, so runs stay
// byte-identical. Like WithScheduler it composes with WithLoop in any
// order.
func WithContext(ctx context.Context) Option {
	if ctx == nil {
		return func(c *config) {}
	}
	// Bind the method value once: options built ahead of time and
	// re-applied to a reused session (explore workers apply the same
	// slice before every run) would otherwise allocate a fresh
	// ctx.Err closure on every application.
	errf := ctx.Err
	return func(c *config) { c.interrupt = errf }
}

// WithGraph configures what the Async Graph builder tracks. Without this
// option the builder tracks everything (asyncgraph.DefaultConfig).
func WithGraph(cfg asyncgraph.Config) Option {
	return func(c *config) { c.graph = cfg; c.graphSet = true }
}

// WithDebugStacks turns on creation-stack capture: the graph builder
// records the Go call stack (via runtime.Callers) at every
// promise/emitter creation, trigger, and callback registration, and
// provenance chains render the captured frames under each hop. It
// composes with WithGraph in any order — the flag is OR'd into the
// graph config when the session is built. Opt-in because symbolizing a
// stack per tracked API call dominates the builder's cost (see
// EXPERIMENTS.md). The exploration layer's [explore.WithDebugStacks]
// applies this option to every run of an exploration, and
// [explore.WithChains] builds on it; the canonical semantics table for
// all three lives in package explore's doc comment.
func WithDebugStacks() Option {
	return func(c *config) { c.debugStacks = true }
}

// WithDetect configures the bug detectors. Without this option all
// detectors run with the paper's thresholds (detect.DefaultConfig).
func WithDetect(cfg detect.Config) Option {
	return func(c *config) { c.det = cfg; c.detSet = true }
}

// WithNetwork configures the simulated network.
func WithNetwork(opts netio.Options) Option {
	return func(c *config) { c.network = opts }
}

// WithDB configures the simulated database.
func WithDB(opts mongosim.Options) Option {
	return func(c *config) { c.db = opts }
}

// Disabled runs the program without the Async Graph builder or the
// detectors attached — the "baseline" setting of the paper's overhead
// evaluation. Tracing and metrics, when requested, still attach: they
// are independent probe consumers.
func Disabled() Option {
	return func(c *config) { c.disabled = true }
}

// WithTrace streams a structured event trace of the run to w in the
// given format. The trace is buffered in a bounded ring (see
// WithTraceConfig) and written when Run finishes.
func WithTrace(w io.Writer, format TraceFormat) Option {
	return func(c *config) {
		if format == "" {
			format = TraceNDJSON
		}
		c.traceW = w
		c.traceFmt = format
		c.traceOn = true
	}
}

// WithTraceConfig tunes the trace exporter (ring capacity, drop policy,
// nested-function and loop-iteration events). It implies nothing by
// itself: combine with WithTrace, or read Session.Exporter directly.
func WithTraceConfig(cfg trace.ExporterConfig) Option {
	return func(c *config) { c.traceCfg = cfg; c.traceOn = true }
}

// WithMetrics attaches the online metrics registry; the Report's Metrics
// field carries the resulting snapshot.
func WithMetrics() Option {
	return func(c *config) { c.metricsOn = true }
}

// Report is the outcome of a Session run.
type Report struct {
	// Graph is the Async Graph built during the run (nil when the tool
	// was disabled).
	Graph *asyncgraph.Graph
	// Warnings are the detector findings, online and post-hoc.
	Warnings []asyncgraph.Warning
	// Uncaught lists exceptions that escaped top-level callbacks.
	Uncaught []eventloop.UncaughtError
	// Ticks is the number of top-level callback executions.
	Ticks int
	// Anomalies lists context-validator mismatches (should be empty).
	Anomalies []string
	// Metrics is the observability snapshot (nil unless WithMetrics).
	Metrics *trace.Snapshot
}

// WarningsOf filters the report's warnings by category. Use the typed
// detect.Cat* constants; a bare string still converts but is not checked.
func (r *Report) WarningsOf(category detect.Category) []asyncgraph.Warning {
	var out []asyncgraph.Warning
	for _, w := range r.Warnings {
		if w.Category == category {
			out = append(out, w)
		}
	}
	return out
}

// HasWarning reports whether any warning of the category was found.
func (r *Report) HasWarning(category detect.Category) bool {
	return len(r.WarningsOf(category)) > 0
}

// WarningsOfFamily filters the report's warnings by detector family
// (scheduling, emitter, promise, race).
func (r *Report) WarningsOfFamily(family detect.Family) []asyncgraph.Warning {
	var out []asyncgraph.Warning
	for _, w := range r.Warnings {
		if detect.FamilyOf(w.Category) == family {
			out = append(out, w)
		}
	}
	return out
}

// Session owns one runtime instance plus the attached tool.
type Session struct {
	cfg      config
	loop     *eventloop.Loop
	builder  *asyncgraph.Builder
	analyzer *detect.Analyzer
	exporter *trace.Exporter
	metrics  *trace.Metrics
	ctx      *Context

	// applyCfg is Apply's reusable option-evaluation scratch: the
	// closure calls make a stack-local config escape, and Apply runs
	// before every run of a reused session.
	applyCfg *config
}

// New creates a session. With no options the session tracks everything
// and runs all detectors.
func New(opts ...Option) *Session {
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	if !cfg.disabled {
		if !cfg.graphSet {
			cfg.graph = asyncgraph.DefaultConfig()
		}
		if cfg.debugStacks {
			cfg.graph.DebugStacks = true
		}
		if !cfg.detSet {
			cfg.det = detect.DefaultConfig()
		}
	}
	if cfg.sched != nil {
		cfg.loop.Scheduler = cfg.sched
	}
	if cfg.interrupt != nil {
		cfg.loop.Interrupt = cfg.interrupt
	}
	s := &Session{cfg: cfg, loop: eventloop.New(cfg.loop)}
	if !cfg.disabled {
		s.builder = asyncgraph.NewBuilder(cfg.graph)
		s.analyzer = detect.NewAnalyzer(s.builder, cfg.det)
		// Order matters: the builder must see each event first so the
		// analyzer can annotate the nodes it creates.
		s.loop.Probes().Attach(s.builder)
		s.loop.Probes().Attach(s.analyzer)
	}
	if cfg.traceOn {
		s.exporter = trace.NewExporter(s.loop, cfg.traceCfg)
		s.loop.Probes().Attach(s.exporter)
	}
	if cfg.metricsOn {
		s.metrics = trace.NewMetrics(s.loop, trace.MetricsConfig{})
		s.loop.Probes().Attach(s.metrics)
	}
	s.ctx = newContext(s.loop, cfg.network, cfg.db)
	return s
}

// Loop exposes the underlying event loop (e.g. to attach extra hooks).
func (s *Session) Loop() *eventloop.Loop { return s.loop }

// Exporter exposes the trace exporter (nil unless WithTrace or
// WithTraceConfig was given) for mid-run inspection.
func (s *Session) Exporter() *trace.Exporter { return s.exporter }

// Metrics exposes the metrics registry (nil unless WithMetrics) for
// mid-run snapshots.
func (s *Session) Metrics() *trace.Metrics { return s.metrics }

// Disable detaches AsyncG's hooks at runtime — the tool is pluggable and
// "once disabled, introduces no overhead". Callable from inside
// callbacks; events while disabled are simply not observed. Trace and
// metrics probes stay attached: they observe, they are not the tool.
func (s *Session) Disable() {
	if s.builder != nil {
		s.loop.Probes().Detach(s.builder)
	}
	if s.analyzer != nil {
		s.loop.Probes().Detach(s.analyzer)
	}
}

// Enable re-attaches AsyncG's hooks. The builder resynchronizes its
// shadow stack at the next tick boundary, as the paper describes for
// mid-run activation.
func (s *Session) Enable() {
	if s.builder != nil {
		s.loop.Probes().Attach(s.builder)
	}
	if s.analyzer != nil {
		s.loop.Probes().Attach(s.analyzer)
	}
}

// Context exposes the runtime API bundle without running (advanced use).
func (s *Session) Context() *Context { return s.ctx }

// Reset returns the session to its cold-start state while retaining its
// allocation set: the event loop (with every substrate that registered a
// reset hook — network, file system, database, promise arena), the Async
// Graph builder, the detectors, and the trace/metrics probes all rewind
// to the state a freshly constructed session would have. Object id and
// registration sequences restart, so a deterministic program re-run after
// Reset produces a byte-identical Report; pools, interned names, and map
// buckets survive, so the re-run allocates almost nothing.
//
// Reset must not be called while Run is executing. Objects obtained from
// the previous run (emitters, promises, servers, documents, the previous
// Report's Graph and Warnings) are invalidated: the runtime recycles
// their storage for the next run.
func (s *Session) Reset() {
	s.loop.Reset()
	if s.builder != nil {
		s.builder.Reset()
	}
	if s.analyzer != nil {
		s.analyzer.Reset()
	}
	if s.exporter != nil {
		s.exporter.Reset()
	}
	if s.metrics != nil {
		s.metrics.Reset()
	}
}

// Apply installs per-run options on a warm session. Only the options
// that may legitimately differ between reused runs take effect: the
// scheduler (WithScheduler — schedule exploration hands every run a
// fresh recording) and the interrupt context (WithContext). Structural
// options — tracing, metrics, graph and detector configuration — are
// fixed at New; passing them here is a no-op, which lets callers forward
// the same option slice they would give a fresh session.
func (s *Session) Apply(opts ...Option) {
	if s.applyCfg == nil {
		s.applyCfg = new(config)
	}
	c := s.applyCfg
	*c = config{}
	for _, opt := range opts {
		opt(c)
	}
	if c.sched != nil {
		s.loop.SetScheduler(c.sched)
	}
	if c.interrupt != nil {
		s.loop.SetInterrupt(c.interrupt)
	}
}

// Run executes program as the main tick and processes the event loop to
// completion (or to a configured limit, returned as the error — the
// report is still valid in that case, covering the truncated prefix).
// When a trace writer was configured, the buffered trace is flushed to
// it before Run returns; a flush failure is returned only if the run
// itself succeeded.
func (s *Session) Run(program func(ctx *Context)) (*Report, error) {
	main := vm.NewFuncAt("main", loc.Caller(0), func([]Value) Value {
		program(s.ctx)
		return Undefined
	})
	err := s.loop.Run(main)
	report := &Report{
		Uncaught: s.loop.Uncaught(),
		Ticks:    s.loop.Tick(),
	}
	if s.builder != nil {
		report.Graph = s.builder.Graph()
		report.Anomalies = s.builder.Anomalies()
	}
	if s.analyzer != nil {
		report.Warnings = s.analyzer.Finish()
	}
	if s.metrics != nil {
		report.Metrics = s.metrics.Snapshot()
	}
	if s.exporter != nil && s.cfg.traceW != nil {
		if werr := s.exporter.WriteTo(s.cfg.traceW, s.cfg.traceFmt); werr != nil && err == nil {
			err = werr
		}
	}
	return report, err
}
