package asyncg

import (
	"time"

	"asyncg/internal/eventloop"
	"asyncg/internal/events"
	"asyncg/internal/fssim"
	"asyncg/internal/httpsim"
	"asyncg/internal/loc"
	"asyncg/internal/mongosim"
	"asyncg/internal/netio"
	"asyncg/internal/promise"
	"asyncg/internal/state"
	"asyncg/internal/vm"
)

// Re-exported runtime types, so programs written against the facade
// rarely need the internal packages.
type (
	// Function is a first-class callback value (create with F).
	Function = vm.Function
	// Emitter is a Node-style event emitter.
	Emitter = events.Emitter
	// Promise is an ECMAScript-style promise.
	Promise = promise.Promise
	// Awaiter suspends async-function bodies on promises.
	Awaiter = promise.Awaiter
	// Server is a simulated HTTP server.
	Server = httpsim.Server
	// IncomingMessage is a received HTTP request or response.
	IncomingMessage = httpsim.IncomingMessage
	// ServerResponse writes an HTTP response.
	ServerResponse = httpsim.ServerResponse
	// RequestOptions parameterizes an outgoing HTTP request.
	RequestOptions = httpsim.RequestOptions
	// DB is the simulated MongoDB instance.
	DB = mongosim.DB
	// Document is one stored DB record.
	Document = mongosim.Document
	// Cell is a shared variable observable by the race detector.
	Cell = state.Cell
)

// Context is the runtime API surface handed to programs: the simulated
// equivalents of the Node.js globals (process.nextTick, timers), the
// events/promise modules, and the net/http/db libraries. Every method
// captures its caller's source location for the Async Graph.
type Context struct {
	loop    *eventloop.Loop
	net     *netio.Network
	db      *mongosim.DB
	fs      *fssim.FS
	netOpts netio.Options
	dbOpts  mongosim.Options
}

func newContext(l *eventloop.Loop, netOpts netio.Options, dbOpts mongosim.Options) *Context {
	return &Context{loop: l, netOpts: netOpts, dbOpts: dbOpts}
}

// Loop exposes the underlying event loop.
func (c *Context) Loop() *eventloop.Loop { return c.loop }

// Now returns the current virtual time.
func (c *Context) Now() time.Duration { return c.loop.Now() }

// Work simulates synchronous computation taking d of virtual time.
func (c *Context) Work(d time.Duration) { c.loop.Work(d) }

// Call synchronously invokes a function value as a nested call (probes
// observe it), returning its result. A thrown simulated exception
// propagates as in JavaScript.
func (c *Context) Call(fn *Function, args ...Value) Value {
	ret, thrown := c.loop.Invoke(fn, args, nil)
	if thrown != nil {
		panic(thrown)
	}
	return ret
}

// --- Scheduling (self-scheduling APIs, §II-A) ---

// NextTick schedules fn on the highest-priority microtask queue.
func (c *Context) NextTick(fn *Function, args ...Value) {
	c.loop.NextTick(loc.Caller(0), fn, args...)
}

// QueueMicrotask schedules fn on the promise-job microtask queue
// (lower priority than NextTick).
func (c *Context) QueueMicrotask(fn *Function, args ...Value) {
	c.loop.QueueMicrotask(loc.Caller(0), fn, args...)
}

// SetTimeout schedules fn once after delay; returns the timer id.
func (c *Context) SetTimeout(fn *Function, delay time.Duration, args ...Value) uint64 {
	return c.loop.SetTimeout(loc.Caller(0), fn, delay, args...)
}

// SetInterval schedules fn every delay; returns the timer id.
func (c *Context) SetInterval(fn *Function, delay time.Duration, args ...Value) uint64 {
	return c.loop.SetInterval(loc.Caller(0), fn, delay, args...)
}

// SetImmediate schedules fn for the check phase; returns the id.
func (c *Context) SetImmediate(fn *Function, args ...Value) uint64 {
	return c.loop.SetImmediate(loc.Caller(0), fn, args...)
}

// ClearTimeout cancels a pending timeout.
func (c *Context) ClearTimeout(id uint64) { c.loop.ClearTimeout(loc.Caller(0), id) }

// ClearInterval cancels a repeating timer.
func (c *Context) ClearInterval(id uint64) { c.loop.ClearInterval(loc.Caller(0), id) }

// ClearImmediate cancels a pending immediate.
func (c *Context) ClearImmediate(id uint64) { c.loop.ClearImmediate(loc.Caller(0), id) }

// --- Emitters ---

// NewEmitter creates an event emitter with a diagnostic name.
func (c *Context) NewEmitter(name string) *Emitter {
	return events.New(c.loop, name, loc.Caller(0))
}

// On registers a listener (wrapper capturing the user call site).
func (c *Context) On(e *Emitter, event string, fn *Function) {
	e.On(loc.Caller(0), event, fn)
}

// Once registers a once-listener.
func (c *Context) Once(e *Emitter, event string, fn *Function) {
	e.Once(loc.Caller(0), event, fn)
}

// Emit emits an event.
func (c *Context) Emit(e *Emitter, event string, args ...Value) bool {
	return e.Emit(loc.Caller(0), event, args...)
}

// RemoveListener removes a listener.
func (c *Context) RemoveListener(e *Emitter, event string, fn *Function) {
	e.RemoveListener(loc.Caller(0), event, fn)
}

// OnceEvent returns a promise that fulfills with the event's first
// argument the next time the emitter emits it — Node's events.once()
// idiom bridging the emitter and promise worlds.
func (c *Context) OnceEvent(e *Emitter, event string) *Promise {
	at := loc.Caller(0)
	p := promise.New(c.loop, at, nil)
	e.Once(at, event, vm.NewFuncAt("(events.once)", loc.Internal,
		func(args []Value) Value {
			p.Resolve(loc.Internal, vm.Arg(args, 0))
			return Undefined
		}))
	return p
}

// --- Promises ---

// NewPromise creates a promise, invoking executor synchronously with the
// promise as its argument (as the Promise constructor does).
func (c *Context) NewPromise(executor *Function) *Promise {
	return promise.New(c.loop, loc.Caller(0), executor)
}

// Resolve creates an already-fulfilled promise (Promise.resolve).
func (c *Context) Resolve(v Value) *Promise {
	return promise.Resolved(c.loop, loc.Caller(0), v)
}

// Reject creates an already-rejected promise (Promise.reject).
func (c *Context) Reject(reason Value) *Promise {
	return promise.RejectedP(c.loop, loc.Caller(0), reason)
}

// Then chains handlers onto p (wrapper capturing the user call site).
func (c *Context) Then(p *Promise, onFulfilled, onRejected *Function) *Promise {
	return p.Then(loc.Caller(0), onFulfilled, onRejected)
}

// Catch chains a rejection handler onto p.
func (c *Context) Catch(p *Promise, onRejected *Function) *Promise {
	return p.Catch(loc.Caller(0), onRejected)
}

// All is Promise.all.
func (c *Context) All(ps ...*Promise) *Promise {
	return promise.All(c.loop, loc.Caller(0), ps...)
}

// Race is Promise.race.
func (c *Context) Race(ps ...*Promise) *Promise {
	return promise.Race(c.loop, loc.Caller(0), ps...)
}

// AllSettled is Promise.allSettled.
func (c *Context) AllSettled(ps ...*Promise) *Promise {
	return promise.AllSettled(c.loop, loc.Caller(0), ps...)
}

// Any is Promise.any.
func (c *Context) Any(ps ...*Promise) *Promise {
	return promise.Any(c.loop, loc.Caller(0), ps...)
}

// Async invokes an async function: body starts synchronously and may
// suspend with aw.Await; the returned promise settles with its result.
func (c *Context) Async(name string, body func(aw *Awaiter) Value) *Promise {
	return promise.Go(c.loop, loc.Caller(0), name, body)
}

// Await suspends the given async body on p (wrapper capturing the call
// site).
func (c *Context) Await(aw *Awaiter, p *Promise) Value {
	return aw.Await(loc.Caller(0), p)
}

// --- Network / HTTP / DB substrates ---

// Net returns the session's simulated network, creating it on first use.
func (c *Context) Net() *netio.Network {
	if c.net == nil {
		c.net = netio.New(c.loop, c.netOpts)
	}
	return c.net
}

// CreateServer creates an HTTP server whose handler receives
// (req *IncomingMessage, res *ServerResponse).
func (c *Context) CreateServer(handler *Function) *Server {
	return httpsim.CreateServer(c.Net(), loc.Caller(0), handler)
}

// ListenHTTP binds an HTTP server to a port (wrapper capturing the call
// site).
func (c *Context) ListenHTTP(s *Server, port int) error {
	return s.Listen(loc.Caller(0), port)
}

// HTTPRequest issues an outgoing request; onResponse receives the
// *IncomingMessage response.
func (c *Context) HTTPRequest(opts RequestOptions, onResponse *Function) *httpsim.ClientRequest {
	return httpsim.Request(c.Net(), loc.Caller(0), opts, onResponse)
}

// HTTPGet issues a GET request.
func (c *Context) HTTPGet(port int, path string, onResponse *Function) *httpsim.ClientRequest {
	return httpsim.Get(c.Net(), loc.Caller(0), port, path, onResponse)
}

// DB returns the session's simulated database, creating it on first use.
func (c *Context) DB() *DB {
	if c.db == nil {
		c.db = mongosim.New(c.loop, c.dbOpts)
	}
	return c.db
}

// FS returns the session's simulated file system, creating it on first
// use.
func (c *Context) FS() *fssim.FS {
	if c.fs == nil {
		c.fs = fssim.New(c.loop, fssim.Options{})
	}
	return c.fs
}

// NewCell creates a shared variable observable by the experimental race
// detector (the paper's §IX extension).
func (c *Context) NewCell(name string, initial Value) *Cell {
	return state.NewCell(c.loop, name, loc.Caller(0), initial)
}

// CellGet reads a cell (wrapper capturing the user call site).
func (c *Context) CellGet(cell *Cell) Value { return cell.Get(loc.Caller(0)) }

// CellSet writes a cell (wrapper capturing the user call site).
func (c *Context) CellSet(cell *Cell, v Value) { cell.Set(loc.Caller(0), v) }
