// Command agviz converts an Async Graph JSON log (as dumped by the
// asyncg command or Graph.WriteJSON) into DOT for rendering — the
// offline equivalent of the artifact's visualization website.
//
// Usage:
//
//	agviz graph.json > graph.dot
//	agviz -title "fig4" graph.json > graph.dot
//	asyncg -case fig4 -json /dev/stdout | agviz - > fig5.dot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"asyncg/internal/asyncgraph"
)

func main() {
	title := flag.String("title", "", "graph title")
	svg := flag.Bool("svg", false, "emit a standalone SVG instead of DOT")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: agviz [-title t] <graph.json|->")
		os.Exit(2)
	}
	var in io.Reader
	if flag.Arg(0) == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	g, err := asyncgraph.ReadJSON(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "agviz: parse:", err)
		os.Exit(1)
	}
	var werr error
	if *svg {
		werr = g.WriteSVG(os.Stdout, *title)
	} else {
		werr = g.WriteDOT(os.Stdout, *title)
	}
	if werr != nil {
		fmt.Fprintln(os.Stderr, "agviz: write:", werr)
		os.Exit(1)
	}
}
