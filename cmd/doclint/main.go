// Doclint is the repository's documentation checker, run by `make
// docs-check` and CI. It has two modes:
//
//	doclint docs <dir>...   lint Go doc comments: every exported
//	                        top-level declaration in the given package
//	                        directories must carry a doc comment, and
//	                        every package must have a package comment.
//	doclint links <file>... check markdown files: every relative link
//	                        and image target must exist on disk
//	                        (anchors and external URLs are skipped).
//	doclint xref <dir>...   check Go doc-comment cross-references:
//	                        every [Ident] and [pkg.Ident] doc link in
//	                        the given package directories must resolve
//	                        to an exported declaration (references to
//	                        packages outside the given set are skipped).
//
// It uses only the standard library, prints one "file:line: message"
// finding per problem, and exits 1 when any finding was printed.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	if len(os.Args) < 3 {
		fmt.Fprintln(os.Stderr, "usage: doclint docs <dir>... | doclint links <file>...")
		os.Exit(2)
	}
	var findings int
	switch os.Args[1] {
	case "docs":
		for _, dir := range os.Args[2:] {
			findings += lintDocs(dir)
		}
	case "links":
		for _, file := range os.Args[2:] {
			findings += lintLinks(file)
		}
	case "xref":
		findings += lintXrefs(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "doclint: unknown mode %q\n", os.Args[1])
		os.Exit(2)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// lintDocs parses one package directory (tests excluded) and reports
// exported declarations without doc comments.
func lintDocs(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		return 1
	}
	findings := 0
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: %s\n", p.Filename, p.Line, fmt.Sprintf(format, args...))
		findings++
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			// Anchor the finding on any file of the package.
			for name, f := range pkg.Files {
				fmt.Printf("%s:1: package %s has no package comment\n", name, pkg.Name)
				findings++
				_ = f
				break
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || isExportedRecv(d) == skip {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), "exported %s %s has no doc comment", declKind(d), d.Name.Name)
					}
				case *ast.GenDecl:
					findings += lintGenDecl(report, d)
				}
			}
		}
	}
	return findings
}

type recvVisibility int

const (
	keep recvVisibility = iota
	skip
)

// isExportedRecv skips methods on unexported receivers: their docs are
// internal style, not API surface.
func isExportedRecv(d *ast.FuncDecl) recvVisibility {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return keep
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			if !tt.IsExported() {
				return skip
			}
			return keep
		default:
			return keep
		}
	}
}

func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// lintGenDecl handles const/var/type groups: the group doc covers its
// members, so a finding fires only when neither the group nor the spec
// carries a comment.
func lintGenDecl(report func(token.Pos, string, ...any), d *ast.GenDecl) int {
	if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
		return 0
	}
	findings := 0
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
				report(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
				findings++
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(s.Pos(), "exported %s %s has no doc comment", d.Tok, name.Name)
					findings++
				}
			}
		}
	}
	return findings
}

// xrefPattern matches Go doc-link references in doc comments:
// [Ident], [pkg.Ident], and [pkg.Type.Method] — an optional lowercase
// package qualifier followed by an exported identifier path. Bracketed
// text that is not an identifier path (regexp classes, half-open
// intervals, citations with spaces) does not match.
var xrefPattern = regexp.MustCompile(`\[(?:([a-z][a-zA-Z0-9]*)\.)?([A-Z][A-Za-z0-9]*(?:\.[A-Z][A-Za-z0-9]*)*)\]`)

// lintXrefs parses every package directory, collects the exported
// top-level declarations per package name, then re-scans all doc
// comments for doc links and reports references that do not resolve.
// Links qualified with a package name outside the parsed set (stdlib,
// third-party) are skipped — the checker only owns this repo's surface.
func lintXrefs(dirs []string) int {
	fset := token.NewFileSet()
	type pkgFiles struct {
		name  string
		files []*ast.File
	}
	var parsed []pkgFiles
	decls := make(map[string]map[string]bool) // package name → exported decl set
	findings := 0
	for _, dir := range dirs {
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			findings++
			continue
		}
		for _, pkg := range pkgs {
			if strings.HasSuffix(pkg.Name, "_test") || pkg.Name == "main" {
				// Binaries export nothing referenceable.
				continue
			}
			set := decls[pkg.Name]
			if set == nil {
				set = make(map[string]bool)
				decls[pkg.Name] = set
			}
			pf := pkgFiles{name: pkg.Name}
			for _, f := range pkg.Files {
				pf.files = append(pf.files, f)
				collectDecls(set, f)
			}
			parsed = append(parsed, pf)
		}
	}
	for _, pf := range parsed {
		for _, f := range pf.files {
			for _, cg := range f.Comments {
				findings += checkXrefs(fset, cg, pf.name, decls)
			}
		}
	}
	return findings
}

// collectDecls records every exported top-level identifier of one file:
// functions, methods (as Type.Method), types, consts, and vars.
func collectDecls(set map[string]bool, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			if d.Recv != nil && len(d.Recv.List) > 0 {
				if recv := recvTypeName(d.Recv.List[0].Type); recv != "" {
					set[recv+"."+d.Name.Name] = true
				}
				continue
			}
			set[d.Name.Name] = true
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() {
						set[s.Name.Name] = true
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if name.IsExported() {
							set[name.Name] = true
						}
					}
				}
			}
		}
	}
}

// recvTypeName unwraps a method receiver type down to its identifier.
func recvTypeName(t ast.Expr) string {
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// checkXrefs validates every doc link in one comment group against the
// declaration sets: unqualified links resolve in the comment's own
// package, qualified links in the named package when it was parsed.
func checkXrefs(fset *token.FileSet, cg *ast.CommentGroup, selfPkg string, decls map[string]map[string]bool) int {
	findings := 0
	for _, c := range cg.List {
		for _, m := range xrefPattern.FindAllStringSubmatch(c.Text, -1) {
			pkg, ident := m[1], m[2]
			if pkg == "" {
				pkg = selfPkg
			}
			set, known := decls[pkg]
			if !known {
				continue
			}
			// A method link also resolves if its type exists: fields and
			// promoted methods are legitimate prose targets.
			if set[ident] {
				continue
			}
			if dot := strings.IndexByte(ident, '.'); dot >= 0 && set[ident[:dot]] {
				continue
			}
			p := fset.Position(c.Pos())
			fmt.Printf("%s:%d: broken doc link [%s.%s]\n", p.Filename, p.Line, pkg, m[2])
			findings++
		}
	}
	return findings
}

// linkPattern matches inline markdown links and images: [text](target)
// and ![alt](target). Reference-style links are rare in this repo and
// are not checked.
var linkPattern = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// lintLinks checks every relative link target in one markdown file.
func lintLinks(file string) int {
	b, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		return 1
	}
	findings := 0
	dir := filepath.Dir(file)
	inFence := false
	for i, line := range strings.Split(string(b), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkPattern.FindAllStringSubmatch(line, -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue
			}
			// Strip an in-file anchor from a relative path.
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target = target[:idx]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
				fmt.Printf("%s:%d: broken link %q\n", file, i+1, m[1])
				findings++
			}
		}
	}
	return findings
}
