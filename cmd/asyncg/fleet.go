package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"asyncg/internal/explore"
	"asyncg/internal/fleet"
)

// runFleet implements the "asyncg fleet" subcommand: the distributed
// exploration coordinator. It shards one exploration across a set of
// asyncg serve workers, streams unified progress, and merges the
// partial results into output byte-identical to a single-process
// `asyncg explore` at the same budget. The journal directory makes a
// killed coordinator resumable with -resume.
func runFleet(args []string) int {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	var (
		workers        = fs.String("workers", "", "comma-separated serve worker base URLs (e.g. http://127.0.0.1:8321,http://127.0.0.1:8322)")
		targetSpec     = fs.String("target", "", "registry target spec: case:<id>[:fixed] or acmeair[:requests=N,clients=N,seed=N]")
		runs           = fs.Int("runs", 32, "global run budget (exhaustive: enumeration budget)")
		seed           = fs.Int64("seed", 1, "base seed for the random/delay/coverage strategies")
		strategy       = fs.String("strategy", "random", "exploration strategy: random, delay, exhaustive, coverage")
		kinds          = fs.String("kinds", "", "comma-separated choice kinds to perturb (default io-order,timer-tie,latency)")
		delayBound     = fs.Int("delay-bound", 2, "delay strategy: max non-default picks per run")
		por            = fs.Bool("por", false, "exhaustive strategy: partial-order reduction")
		shardRuns      = fs.Int("shard-runs", 8, "target shard width in runs")
		metrics        = fs.Bool("metrics", false, "aggregate per-run trace metrics into the merged result")
		chains         = fs.Bool("chains", false, "attach async causal chains to the merged warning classification (computed locally after the merge; byte-identical to single-process -chains)")
		debugStack     = fs.Bool("debug-stacks", false, "run shard schedules and chain replays under creation-stack capture so chain hops carry Go call sites")
		dir            = fs.String("dir", "", "journal directory (default: a fresh temp dir, removed on success, kept on failure)")
		resume         = fs.String("resume", "", "resume the journal in this directory; planning flags come from its plan.json")
		ndjsonOut      = fs.String("ndjson", "", "stream merged NDJSON exploration records to this file ('-' for stdout)")
		requestTimeout = fs.Duration("request-timeout", 10*time.Second, "per control request (health/submit/cancel) timeout")
		maxAttempts    = fs.Int("max-attempts", 5, "per-shard dispatch attempts across workers before the run fails")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: asyncg fleet -workers <url,url,...> -target <spec> [flags]\n")
		fmt.Fprintf(fs.Output(), "       asyncg fleet -workers <url,url,...> -resume <dir>\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "fleet: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return exitUsage
	}

	var workerURLs []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workerURLs = append(workerURLs, w)
		}
	}
	if len(workerURLs) == 0 {
		fmt.Fprintln(os.Stderr, "fleet: -workers is required")
		fs.Usage()
		return exitUsage
	}

	var plan fleet.Plan
	journalDir := *dir
	if *resume != "" {
		// A resumed exploration is defined by its journal; planning flags
		// would silently disagree with it, so their presence is an error.
		conflicts := map[string]bool{
			"target": true, "runs": true, "seed": true, "strategy": true,
			"kinds": true, "delay-bound": true, "por": true, "shard-runs": true,
			"metrics": true, "dir": true, "chains": true, "debug-stacks": true,
		}
		bad := ""
		fs.Visit(func(f *flag.Flag) {
			if conflicts[f.Name] {
				bad = f.Name
			}
		})
		if bad != "" {
			fmt.Fprintf(os.Stderr, "fleet: -%s conflicts with -resume (the journal's plan.json wins)\n", bad)
			return exitUsage
		}
		p, err := fleet.LoadPlan(*resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return exitUsage
		}
		plan = p
		journalDir = *resume
	} else {
		if *targetSpec == "" {
			fmt.Fprintln(os.Stderr, "fleet: -target is required (or -resume <dir>)")
			fs.Usage()
			return exitUsage
		}
		plan = fleet.Plan{
			Target:      *targetSpec,
			Strategy:    *strategy,
			Seed:        *seed,
			Runs:        *runs,
			Kinds:       *kinds,
			DelayBound:  *delayBound,
			POR:         *por,
			ShardRuns:   *shardRuns,
			Metrics:     *metrics,
			Chains:      *chains,
			DebugStacks: *debugStack,
		}
		if journalDir == "" {
			tmp, err := os.MkdirTemp("", "asyncg-fleet-*")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return exitUsage
			}
			journalDir = tmp
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The merged stream mirrors `asyncg explore -ndjson` byte for byte:
	// run lines in global order as shards complete in order, then the
	// classification and summary.
	var (
		stream     *explore.NDJSONStream
		streamFile *os.File
		streamErr  error
		progress   func(explore.RunResult)
	)
	if *ndjsonOut != "" {
		out := os.Stdout
		if *ndjsonOut != "-" {
			f, err := os.Create(*ndjsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return exitUsage
			}
			streamFile = f
			out = f
		}
		target, err := explore.TargetByName(plan.Target)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return exitUsage
		}
		stream = explore.NewNDJSONStream(out, target.Name)
		progress = func(rr explore.RunResult) {
			if err := stream.Run(rr); err != nil && streamErr == nil {
				streamErr = err
			}
		}
	}

	res, stats, runErr := fleet.Run(ctx, fleet.Config{
		Plan:           plan,
		Workers:        workerURLs,
		Dir:            journalDir,
		Resume:         *resume != "",
		RequestTimeout: *requestTimeout,
		MaxAttempts:    *maxAttempts,
		Progress:       progress,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})

	if stream != nil && res != nil {
		if err := stream.Finish(res); err != nil && streamErr == nil {
			streamErr = err
		}
	}
	if streamFile != nil {
		if err := streamFile.Close(); err != nil && streamErr == nil {
			streamErr = err
		}
	}
	if streamErr != nil {
		fmt.Fprintln(os.Stderr, streamErr)
		return exitUsage
	}

	if runErr != nil {
		fmt.Fprintf(os.Stderr, "fleet: stopped after %d run(s): %v\n", runCount(res), runErr)
		fmt.Fprintf(os.Stderr, "fleet: journal kept in %s — resume with: asyncg fleet -workers %s -resume %s\n",
			journalDir, *workers, journalDir)
		return exitFindings
	}

	if stats != nil {
		fmt.Fprintf(os.Stderr, "fleet: %d shard(s): %d dispatched, %d resumed from journal, %d retrie(s) across %d worker(s)\n",
			stats.Shards, stats.Dispatched, stats.Resumed, stats.Retries, len(workerURLs))
	}
	if note := res.BudgetNote(); note != "" {
		fmt.Fprintf(os.Stderr, "fleet: %s\n", note)
	}
	if *ndjsonOut != "-" {
		if err := res.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return exitUsage
		}
	}
	// Success: a temp journal has served its purpose. Explicit -dir (or
	// -resume) journals are the user's to keep.
	if *dir == "" && *resume == "" {
		os.RemoveAll(journalDir)
	}
	return exitOK
}

func runCount(res *explore.Result) int {
	if res == nil {
		return 0
	}
	return len(res.Runs)
}
