package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"asyncg"
	"asyncg/internal/explore"
	"asyncg/internal/provenance"
	"asyncg/internal/trace"
)

// runExplore implements the "asyncg explore" subcommand: schedule-space
// exploration of a registry target (a case study or the AcmeAir
// workload), classification of every warning as always/sometimes/never,
// and replay of recorded schedule tokens. It returns the process exit
// code; Ctrl-C / SIGTERM cancel the exploration gracefully, flushing
// whatever NDJSON was produced.
func runExplore(args []string) int {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	var (
		targetSpec = fs.String("target", "", "registry target spec: case:<id>[:fixed] or acmeair[:requests=N,clients=N,seed=N] (alternative to -case/-acmeair)")
		caseID     = fs.String("case", "", "case id to explore (see asyncg -list)")
		fixed      = fs.Bool("fixed", false, "explore the fixed version")
		acme       = fs.Bool("acmeair", false, "explore the AcmeAir workload instead of a case")
		requests   = fs.Int("requests", 50, "AcmeAir: total requests")
		clients    = fs.Int("clients", 4, "AcmeAir: concurrent clients")
		runs       = fs.Int("runs", 32, "number of schedules to execute; with -strategy exhaustive this is a budget — the run stops early when the space is exhausted and warns either way when the enumerated space and the budget disagree")
		workers    = fs.Int("workers", 0, "schedules executed concurrently (0 = GOMAXPROCS, 1 = sequential); results are identical for any worker count")
		seed       = fs.Int64("seed", 1, "base seed for the random/delay strategies")
		strategy   = fs.String("strategy", "random", "exploration strategy: random, delay, exhaustive, coverage")
		kinds      = fs.String("kinds", "", "comma-separated choice kinds to perturb (default io-order,timer-tie,latency; also listener-order, data-order)")
		delayBound = fs.Int("delay-bound", 2, "delay strategy: max non-default picks per run")
		por        = fs.Bool("por", false, "exhaustive strategy: prune schedule branches proven equivalent by partial-order reduction")
		minNew     = fs.Int("min-new-graphs", 0, "exit 1 unless at least this many distinct async-graph fingerprints were discovered (CI smoke)")
		chains     = fs.Bool("chains", false, "attach async causal chains: each classified warning carries its async stack trace (walked on a replay of its witness schedule) in text and NDJSON output; with -replay, print each warning's chain")
		debugStack = fs.Bool("debug-stacks", false, "capture Go creation call stacks at every promise/emitter creation, trigger, and registration so chain hops show where each node originated (opt-in: measurable overhead, see EXPERIMENTS.md)")
		replay     = fs.String("replay", "", "replay one schedule token instead of exploring")
		ndjsonOut  = fs.String("ndjson", "", "stream NDJSON exploration records to this file ('-' for stdout); run lines are flushed as they complete")
		traceOut   = fs.String("trace", "", "with -replay: write an event trace of the replayed run")
		traceFmt   = fs.String("trace-format", "ndjson", "trace serialization: ndjson or chrome")
		expectSome = fs.Bool("expect-sometimes", false, "exit 1 unless a sometimes-classified warning with witness and counter-witness was found (CI smoke)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: asyncg explore -case <id> [flags]\n")
		fmt.Fprintf(fs.Output(), "       asyncg explore -target case:<id>[:fixed] [flags]\n")
		fmt.Fprintf(fs.Output(), "       asyncg explore -case <id> -replay <token> [-trace t.json]\n")
		fmt.Fprintf(fs.Output(), "       asyncg explore -acmeair [-requests N -clients N] [flags]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	// All front ends resolve targets through the shared registry; the
	// legacy flags just assemble a spec string.
	spec := *targetSpec
	switch {
	case spec != "":
	case *acme:
		spec = fmt.Sprintf("acmeair:requests=%d,clients=%d,seed=%d", *requests, *clients, *seed)
	case *caseID != "":
		spec = "case:" + *caseID
		if *fixed {
			spec += ":fixed"
		}
	default:
		fs.Usage()
		return exitUsage
	}
	target, err := explore.TargetByName(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitUsage
	}

	if *replay != "" {
		return replaySchedule(target, *replay, *traceOut, *traceFmt, *chains, *debugStack)
	}

	strat, err := explore.StrategyFor(*strategy, explore.StrategyParams{
		Seed:       *seed,
		DelayBound: *delayBound,
		POR:        *por,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitUsage
	}
	kindList, err := explore.ParseKinds(*kinds)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitUsage
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := []explore.Option{
		explore.WithRuns(*runs),
		explore.WithSeed(*seed),
		explore.WithStrategy(strat),
		explore.WithKinds(kindList...),
		explore.WithWorkers(*workers),
	}
	if *chains {
		opts = append(opts, explore.WithChains())
	}
	if *debugStack {
		opts = append(opts, explore.WithDebugStacks())
	}

	// NDJSON run lines stream live and flush per line, so an aborted or
	// cancelled exploration still leaves a readable (partial) stream.
	var (
		stream     *explore.NDJSONStream
		streamFile *os.File
		streamErr  error
	)
	if *ndjsonOut != "" {
		out := os.Stdout
		if *ndjsonOut != "-" {
			f, err := os.Create(*ndjsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return exitUsage
			}
			streamFile = f
			out = f
		}
		stream = explore.NewNDJSONStream(out, target.Name)
		opts = append(opts, explore.WithProgress(func(rr explore.RunResult) {
			if err := stream.Run(rr); err != nil && streamErr == nil {
				streamErr = err
			}
		}))
	}

	res, runErr := explore.Run(ctx, target, opts...)
	if note := res.BudgetNote(); note != "" {
		fmt.Fprintf(os.Stderr, "explore: %s\n", note)
	}
	if stream != nil {
		// Finish even on the cancelled path: the classification of the
		// completed prefix is flushed, never silently truncated.
		if err := stream.Finish(res); err != nil && streamErr == nil {
			streamErr = err
		}
		if streamFile != nil {
			if err := streamFile.Close(); err != nil && streamErr == nil {
				streamErr = err
			}
		}
		if streamErr != nil {
			fmt.Fprintln(os.Stderr, streamErr)
			return exitUsage
		}
		if *ndjsonOut != "-" {
			fmt.Printf("wrote %s\n", *ndjsonOut)
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "explore: cancelled after %d run(s): %v\n", len(res.Runs), runErr)
		return exitFindings
	}
	if *ndjsonOut != "-" {
		if err := res.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return exitUsage
		}
	}
	if *expectSome && len(res.Sometimes()) == 0 {
		fmt.Fprintf(os.Stderr, "explore: no schedule-dependent (sometimes) warning found in %d runs\n", len(res.Runs))
		return exitFindings
	}
	if *minNew > 0 && res.NewGraphs < *minNew {
		fmt.Fprintf(os.Stderr, "explore: discovered %d distinct async-graph fingerprint(s) in %d runs, want at least %d\n",
			res.NewGraphs, len(res.Runs), *minNew)
		return exitFindings
	}
	return exitOK
}

// replaySchedule re-executes one recorded schedule, optionally with the
// trace exporter attached — a witness token from an exploration becomes
// a fully-observable run. With chains each warning prints its async
// stack trace; with debugStacks the hops carry creation call sites.
func replaySchedule(target explore.Target, token, traceOut, traceFmt string, chains, debugStacks bool) int {
	format, err := trace.ParseFormat(traceFmt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitUsage
	}
	var extra []asyncg.Option
	var traceFile *os.File
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return exitUsage
		}
		traceFile = f
		extra = append(extra, asyncg.WithTrace(f, format))
	}
	if debugStacks {
		extra = append(extra, asyncg.WithDebugStacks())
	}
	rr, report, err := explore.Replay(target, token, extra...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitUsage
	}
	if traceFile != nil {
		if cerr := traceFile.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, cerr)
			return exitUsage
		}
		fmt.Printf("wrote %s\n", traceOut)
	}
	fmt.Printf("replayed %s under %s\n", target.Name, token)
	fmt.Printf("fingerprint: %s  ticks: %d\n", rr.Fingerprint, rr.Ticks)
	if rr.Err != "" {
		fmt.Printf("run stopped: %s (expected for starvation bugs)\n", rr.Err)
	}
	if len(rr.Warnings) == 0 {
		fmt.Println("no warnings under this schedule")
	}
	for _, w := range report.Warnings {
		fmt.Printf("⚡ %s\n", w)
		if chains && len(w.Chain) > 0 {
			fmt.Printf("   replay token: %s\n", w.ReplayToken)
			fmt.Printf("   async stack trace:\n")
			provenance.Render(os.Stdout, w.Chain, "     ")
		}
	}
	return exitOK
}
