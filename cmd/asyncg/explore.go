package main

import (
	"flag"
	"fmt"
	"os"

	"asyncg"
	"asyncg/internal/explore"
	"asyncg/internal/trace"
)

// runExplore implements the "asyncg explore" subcommand: schedule-space
// exploration of a case study (or the AcmeAir workload), classification
// of every warning as always/sometimes/never, and replay of recorded
// schedule tokens.
func runExplore(args []string) {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	var (
		caseID     = fs.String("case", "", "case id to explore (see asyncg -list)")
		fixed      = fs.Bool("fixed", false, "explore the fixed version")
		acme       = fs.Bool("acmeair", false, "explore the AcmeAir workload instead of a case")
		requests   = fs.Int("requests", 50, "AcmeAir: total requests")
		clients    = fs.Int("clients", 4, "AcmeAir: concurrent clients")
		runs       = fs.Int("runs", 32, "number of schedules to execute; with -strategy exhaustive this is a budget — the run stops early when the space is exhausted and warns either way when the enumerated space and the budget disagree")
		workers    = fs.Int("workers", 0, "schedules executed concurrently (0 = GOMAXPROCS, 1 = sequential); results are identical for any worker count")
		seed       = fs.Int64("seed", 1, "base seed for the random/delay strategies")
		strategy   = fs.String("strategy", "random", "exploration strategy: random, delay, exhaustive")
		kinds      = fs.String("kinds", "", "comma-separated choice kinds to perturb (default io-order,timer-tie,latency; also listener-order, data-order)")
		delayBound = fs.Int("delay-bound", 2, "delay strategy: max non-default picks per run")
		replay     = fs.String("replay", "", "replay one schedule token instead of exploring")
		ndjsonOut  = fs.String("ndjson", "", "write NDJSON exploration records to this file ('-' for stdout)")
		traceOut   = fs.String("trace", "", "with -replay: write an event trace of the replayed run")
		traceFmt   = fs.String("trace-format", "ndjson", "trace serialization: ndjson or chrome")
		expectSome = fs.Bool("expect-sometimes", false, "exit 1 unless a sometimes-classified warning with witness and counter-witness was found (CI smoke)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: asyncg explore -case <id> [flags]\n")
		fmt.Fprintf(fs.Output(), "       asyncg explore -case <id> -replay <token> [-trace t.json]\n")
		fmt.Fprintf(fs.Output(), "       asyncg explore -acmeair [-requests N -clients N] [flags]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	var target explore.Target
	switch {
	case *acme:
		target = explore.AcmeAirTarget(*requests, *clients, *seed)
	case *caseID != "":
		tg, err := explore.CaseTargetByID(*caseID, *fixed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		target = tg
	default:
		fs.Usage()
		os.Exit(2)
	}

	if *replay != "" {
		replaySchedule(target, *replay, *traceOut, *traceFmt)
		return
	}

	strat, err := explore.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	kindList, err := explore.ParseKinds(*kinds)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res := explore.Run(target, explore.Config{
		Runs:       *runs,
		Seed:       *seed,
		Strategy:   strat,
		Kinds:      kindList,
		DelayBound: *delayBound,
		Workers:    *workers,
	})
	if note := res.BudgetNote(); note != "" {
		fmt.Fprintf(os.Stderr, "explore: %s\n", note)
	}
	if *ndjsonOut != "" {
		out := os.Stdout
		if *ndjsonOut != "-" {
			f, err := os.Create(*ndjsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := res.WriteNDJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *ndjsonOut != "-" {
			fmt.Printf("wrote %s\n", *ndjsonOut)
		}
	}
	if *ndjsonOut != "-" {
		if err := res.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *expectSome && len(res.Sometimes()) == 0 {
		fmt.Fprintf(os.Stderr, "explore: no schedule-dependent (sometimes) warning found in %d runs\n", len(res.Runs))
		os.Exit(1)
	}
}

// replaySchedule re-executes one recorded schedule, optionally with the
// trace exporter attached — a witness token from an exploration becomes
// a fully-observable run.
func replaySchedule(target explore.Target, token, traceOut, traceFmt string) {
	format, err := trace.ParseFormat(traceFmt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var extra []asyncg.Option
	var traceFile *os.File
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		traceFile = f
		extra = append(extra, asyncg.WithTrace(f, format))
	}
	rr, report, err := explore.Replay(target, token, extra...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if traceFile != nil {
		if cerr := traceFile.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, cerr)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", traceOut)
	}
	fmt.Printf("replayed %s under %s\n", target.Name, token)
	fmt.Printf("fingerprint: %s  ticks: %d\n", rr.Fingerprint, rr.Ticks)
	if rr.Err != "" {
		fmt.Printf("run stopped: %s (expected for starvation bugs)\n", rr.Err)
	}
	if len(rr.Warnings) == 0 {
		fmt.Println("no warnings under this schedule")
	}
	for _, w := range report.Warnings {
		fmt.Printf("⚡ %s\n", w)
	}
}
