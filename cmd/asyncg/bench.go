package main

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"asyncg/internal/benchio"
)

// runBench implements the "asyncg bench" subcommand: it records the
// exploration benchmark pair (sequential vs parallel schedule
// exploration) through the in-process harness and writes the
// machine-readable report (BENCH_explore.json). With -compare it diffs
// two existing recordings instead.
func runBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		out       = fs.String("out", "BENCH_explore.json", "write the benchmark report to this file ('-' for stdout)")
		caseID    = fs.String("case", "SO-17894000", "case study the exploration benchmarks run")
		runs      = fs.Int("runs", 64, "schedules explored per benchmark operation")
		workers   = fs.Int("workers", 0, "parallel worker count for ExplorePar (0 = GOMAXPROCS)")
		benchtime = fs.String("benchtime", "1s", "per-benchmark measuring time (Go -benchtime syntax, e.g. 2s or 5x)")
		compare   = fs.String("compare", "", "compare two recordings: -compare old.json,new.json (no benchmarks run)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: asyncg bench [-out BENCH_explore.json] [-case <id>] [-runs N] [-benchtime 2s]\n")
		fmt.Fprintf(fs.Output(), "       asyncg bench -compare old.json,new.json\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(exitUsage)
	}

	if *compare != "" {
		compareReports(*compare)
		return
	}

	// testing.Benchmark reads the standard test flags; register them so
	// -benchtime is honored outside a test binary.
	testing.Init()
	flag.Parse()
	if err := benchio.SetBenchtime(*benchtime); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitUsage)
	}

	suite, err := benchio.ExploreSuite(benchio.ExploreOptions{
		CaseID:  *caseID,
		Runs:    *runs,
		Workers: *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitUsage)
	}
	fmt.Fprintf(os.Stderr, "recording %d benchmark(s) on %s (runs/op=%d, benchtime=%s)...\n",
		len(suite), *caseID, *runs, *benchtime)
	rep := benchio.NewReport(benchio.RunSuite(suite))

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitUsage)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitUsage)
	}
	if *out != "-" {
		fmt.Printf("wrote %s (speedup par vs seq: %.2fx on %d cpu)\n", *out, rep.SpeedupParVsSeq, rep.CPUs)
	}
}

// compareReports loads "old,new" report paths and prints the delta
// table.
func compareReports(spec string) {
	var oldPath, newPath string
	for i := 0; i < len(spec); i++ {
		if spec[i] == ',' {
			oldPath, newPath = spec[:i], spec[i+1:]
			break
		}
	}
	if oldPath == "" || newPath == "" {
		fmt.Fprintln(os.Stderr, "bench: -compare wants old.json,new.json")
		os.Exit(exitUsage)
	}
	read := func(path string) *benchio.Report {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitUsage)
		}
		defer f.Close()
		rep, err := benchio.ReadReport(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			os.Exit(exitUsage)
		}
		return rep
	}
	fmt.Print(benchio.Compare(read(oldPath), read(newPath)))
}
