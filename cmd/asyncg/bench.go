package main

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"asyncg/internal/benchio"
)

// runBench implements the "asyncg bench" subcommand: it records the
// exploration benchmark pair (sequential vs parallel schedule
// exploration) through the in-process harness and writes the
// machine-readable report (BENCH_explore.json). With -compare it diffs
// two existing recordings instead.
func runBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		out       = fs.String("out", "BENCH_explore.json", "write the benchmark report to this file ('-' for stdout)")
		caseID    = fs.String("case", "SO-17894000", "case study the exploration benchmarks run")
		runs      = fs.Int("runs", 64, "schedules explored per benchmark operation")
		workers   = fs.Int("workers", 0, "parallel worker count for ExplorePar (0 = GOMAXPROCS)")
		benchtime = fs.String("benchtime", "1s", "per-benchmark measuring time (Go -benchtime syntax, e.g. 2s or 5x)")
		compare   = fs.String("compare", "", "compare two recordings: -compare old.json,new.json (no benchmarks run)")
		gate      = fs.String("gate", "", "after recording, gate allocs/op against this committed report; exit 1 on regression")
		tolerance = fs.Float64("gate-tolerance", 0.25, "allowed relative allocs/op increase before -gate fails")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: asyncg bench [-out BENCH_explore.json] [-case <id>] [-runs N] [-benchtime 2s]\n")
		fmt.Fprintf(fs.Output(), "       asyncg bench -compare old.json,new.json\n")
		fmt.Fprintf(fs.Output(), "       asyncg bench -gate BENCH_explore.json [-gate-tolerance 0.25] [-out new.json]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(exitUsage)
	}

	if *compare != "" {
		compareReports(*compare)
		return
	}

	// The committed gate report is read before anything runs: -out and
	// -gate may name the same file, and the recording must not replace
	// the baseline it is about to be judged against.
	var committed *benchio.Report
	if *gate != "" {
		f, err := os.Open(*gate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitUsage)
		}
		committed, err = benchio.ReadReport(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *gate, err)
			os.Exit(exitUsage)
		}
	}

	// testing.Benchmark reads the standard test flags; register them so
	// -benchtime is honored outside a test binary.
	testing.Init()
	flag.Parse()
	if err := benchio.SetBenchtime(*benchtime); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitUsage)
	}

	suite, err := benchio.ExploreSuite(benchio.ExploreOptions{
		CaseID:  *caseID,
		Runs:    *runs,
		Workers: *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitUsage)
	}
	fmt.Fprintf(os.Stderr, "recording %d benchmark(s) on %s (runs/op=%d, benchtime=%s)...\n",
		len(suite), *caseID, *runs, *benchtime)
	rep := benchio.NewReport(benchio.RunSuite(suite))

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitUsage)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitUsage)
	}
	if *out != "-" {
		if rep.SpeedupNote != "" {
			fmt.Printf("wrote %s (note: %s)\n", *out, rep.SpeedupNote)
		} else {
			fmt.Printf("wrote %s (speedup par vs seq: %.2fx on %d cpu)\n", *out, rep.SpeedupParVsSeq, rep.CPUs)
		}
	}

	if committed != nil {
		text, ok := benchio.Gate(committed, rep, *tolerance)
		fmt.Print(text)
		if !ok {
			fmt.Fprintf(os.Stderr, "bench: allocs/op regressed past %s\n", *gate)
			os.Exit(1)
		}
	}
}

// compareReports loads "old,new" report paths and prints the delta
// table.
func compareReports(spec string) {
	var oldPath, newPath string
	for i := 0; i < len(spec); i++ {
		if spec[i] == ',' {
			oldPath, newPath = spec[:i], spec[i+1:]
			break
		}
	}
	if oldPath == "" || newPath == "" {
		fmt.Fprintln(os.Stderr, "bench: -compare wants old.json,new.json")
		os.Exit(exitUsage)
	}
	read := func(path string) *benchio.Report {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitUsage)
		}
		defer f.Close()
		rep, err := benchio.ReadReport(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			os.Exit(exitUsage)
		}
		return rep
	}
	fmt.Print(benchio.Compare(read(oldPath), read(newPath)))
}
