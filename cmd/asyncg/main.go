// Command asyncg runs the reproduced bug case studies under the AsyncG
// tool and prints or exports their Async Graphs and warnings — the
// equivalent of the artifact's runExamples.sh plus Table I/II reporting.
//
// Usage:
//
//	asyncg -list                       list all case studies
//	asyncg -case SO-33330277           run a case (buggy version)
//	asyncg -case SO-33330277 -fixed    run the fixed version
//	asyncg -case fig4 -dot fig5.dot    export the graph in DOT
//	asyncg -case fig4 -json fig5.json  export the graph log (website format)
//	asyncg -case fig4 -trace t.json -trace-format chrome
//	                                   export an event trace (chrome://tracing)
//	asyncg -case fig4 -metrics         print the observability metrics report
//	asyncg -table1                     run all Table I cases and summarize
//	asyncg -table2                     print the related-work matrix
//	asyncg explore -case SO-17894000   explore the case's schedule space
//	asyncg explore -case SO-17894000 -replay <token>
//	                                   replay one recorded schedule
//	asyncg bench -out BENCH_explore.json
//	                                   record the exploration benchmarks
//	asyncg bench -compare old.json,new.json
//	                                   diff two benchmark recordings
//	asyncg serve -addr 127.0.0.1:8321  run the HTTP analysis service
//	                                   (POST /v1/jobs, NDJSON streams)
//	asyncg fleet -workers <urls> -target <spec>
//	                                   shard one exploration across serve
//	                                   workers; merged output is identical
//	                                   to a single-process explore
//	asyncg fleet -workers <urls> -resume <dir>
//	                                   resume a killed coordinator from
//	                                   its journal directory
//
// Exit codes: 0 clean, 1 analysis findings (or a cancelled run),
// 2 usage/configuration errors — see exit.go.
package main

import (
	"flag"
	"fmt"
	"os"

	"asyncg"
	"asyncg/internal/casestudy"
	"asyncg/internal/experiments"
	"asyncg/internal/trace"
)

func main() {
	// Subcommand dispatch; the flag-only interface below predates it.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "explore":
			os.Exit(runExplore(os.Args[2:]))
		case "bench":
			runBench(os.Args[2:])
			return
		case "serve":
			os.Exit(runServe(os.Args[2:]))
		case "fleet":
			os.Exit(runFleet(os.Args[2:]))
		}
	}
	var (
		list     = flag.Bool("list", false, "list case studies")
		caseID   = flag.String("case", "", "case id to run (see -list)")
		fixed    = flag.Bool("fixed", false, "run the fixed version")
		dotOut   = flag.String("dot", "", "write the Async Graph as DOT to this file")
		jsonOut  = flag.String("json", "", "write the Async Graph log as JSON to this file")
		svgOut   = flag.String("svg", "", "write the Async Graph as a standalone SVG to this file")
		table1   = flag.Bool("table1", false, "run all Table I cases")
		table2   = flag.Bool("table2", false, "print the Table II comparison matrix")
		timeline = flag.Bool("timeline", false, "print the tick-by-tick Async Graph timeline")
		dumpAll  = flag.String("dump-all", "", "run every case and write <dir>/<id>.{json,dot,svg} (the artifact's runExamples.sh)")
		maxTicks = flag.Int("maxticks", 0, "restrict exports to the first N ticks (the paper shows the first 3 ticks of Fig. 3)")
		traceOut = flag.String("trace", "", "write an event trace of the run to this file")
		traceFmt = flag.String("trace-format", "ndjson", "trace serialization: ndjson or chrome")
		metrics  = flag.Bool("metrics", false, "print the observability metrics report after the run")
	)
	flag.Parse()

	format, err := trace.ParseFormat(*traceFmt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitUsage)
	}

	switch {
	case *dumpAll != "":
		dumpAllCases(*dumpAll)
	case *list:
		for _, c := range casestudy.All() {
			fmt.Printf("%-14s %-35s %s\n", c.ID, c.Category, c.Title)
		}
	case *table2:
		experiments.WriteTable2(os.Stdout)
	case *table1:
		runTable1()
	case *caseID != "":
		runCase(*caseID, *fixed, *dotOut, *jsonOut, *svgOut, *timeline, *maxTicks, *traceOut, format, *metrics)
	default:
		flag.Usage()
		os.Exit(exitUsage)
	}
}

// dumpAllCases reproduces the artifact's runExamples.sh: every case is
// executed under AsyncG and its graph log is written in all three
// formats, ready for agviz or the original website.
func dumpAllCases(dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitUsage)
	}
	for _, c := range casestudy.All() {
		res := casestudy.RunBuggy(c)
		base := dir + "/" + c.ID
		writeFile(base+".json", func(f *os.File) error {
			return res.Report.Graph.WriteJSON(f)
		})
		writeFile(base+".dot", func(f *os.File) error {
			return res.Report.Graph.WriteDOT(f, c.ID)
		})
		writeFile(base+".svg", func(f *os.File) error {
			return res.Report.Graph.WriteSVG(f, c.ID+" — "+c.Title)
		})
	}
}

func runTable1() {
	failures := 0
	fmt.Println("Table I — detected bugs")
	for _, c := range casestudy.Table1() {
		res := casestudy.RunBuggy(c)
		fmt.Println(res.Summary())
		if !res.Clean() {
			failures++
		}
		if c.Fixed != nil {
			fres := casestudy.RunFixed(c)
			fmt.Println(fres.Summary())
			if !fres.Clean() {
				failures++
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d case(s) did not meet expectations\n", failures)
		os.Exit(exitFindings)
	}
}

func runCase(id string, fixed bool, dotOut, jsonOut, svgOut string, timeline bool, maxTicks int, traceOut string, traceFormat asyncg.TraceFormat, metrics bool) {
	c, ok := casestudy.ByID(id)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown case %q (try -list)\n", id)
		os.Exit(exitUsage)
	}
	// Observability options ride along into the case's session.
	var extra []asyncg.Option
	var traceFile *os.File
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitUsage)
		}
		traceFile = f
		extra = append(extra, asyncg.WithTrace(f, traceFormat))
	}
	if metrics {
		extra = append(extra, asyncg.WithMetrics())
	}
	var res casestudy.Result
	if fixed {
		if c.Fixed == nil {
			fmt.Fprintf(os.Stderr, "case %s has no fixed version\n", id)
			os.Exit(exitUsage)
		}
		res = casestudy.RunFixed(c, extra...)
	} else {
		res = casestudy.RunBuggy(c, extra...)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitUsage)
		}
		fmt.Printf("wrote %s\n", traceOut)
	}
	fmt.Printf("%s — %s\n", c.ID, c.Title)
	fmt.Printf("ticks: %d, graph: %d nodes / %d edges / %d ticks\n",
		res.Report.Ticks, len(res.Report.Graph.Nodes), len(res.Report.Graph.Edges), len(res.Report.Graph.Ticks))
	if res.Err != nil {
		fmt.Printf("run stopped: %v (expected for starvation bugs)\n", res.Err)
	}
	for _, u := range res.Report.Uncaught {
		fmt.Printf("uncaught exception in %s tick: %v\n", u.Phase, u.Thrown.Error())
	}
	if len(res.Report.Warnings) == 0 {
		fmt.Println("no warnings")
	}
	for _, w := range res.Report.Warnings {
		fmt.Printf("⚡ %s\n", w)
	}
	if metrics && res.Report.Metrics != nil {
		fmt.Println()
		if err := res.Report.Metrics.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		fmt.Println()
	}
	graph := res.Report.Graph
	if maxTicks > 0 {
		graph = graph.TickRange(1, maxTicks)
		fmt.Printf("(exports restricted to the first %d ticks)\n", maxTicks)
	}
	if timeline {
		fmt.Println()
		if err := graph.WriteTimeline(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	if dotOut != "" {
		writeFile(dotOut, func(f *os.File) error {
			return graph.WriteDOT(f, c.ID)
		})
	}
	if jsonOut != "" {
		writeFile(jsonOut, func(f *os.File) error {
			return graph.WriteJSON(f)
		})
	}
	if svgOut != "" {
		writeFile(svgOut, func(f *os.File) error {
			return graph.WriteSVG(f, c.ID)
		})
	}
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitUsage)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitUsage)
	}
	fmt.Printf("wrote %s\n", path)
}
