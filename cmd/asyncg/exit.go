package main

// Exit codes of the asyncg CLI, kept distinct so scripts and CI can
// tell analysis findings from misuse:
//
//	exitOK       clean run, expectations met
//	exitFindings the analysis reported findings (Table I expectation
//	             failures, an -expect-sometimes miss) or was cancelled
//	             before completing
//	exitUsage    usage, configuration, or environment errors: bad flags,
//	             unknown targets or tokens, unwritable output files
const (
	exitOK       = 0
	exitFindings = 1
	exitUsage    = 2
)
