package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"asyncg/internal/server"
)

// runServe implements the "asyncg serve" subcommand: the long-running
// analysis service. SIGTERM/SIGINT trigger a graceful drain — in-flight
// and queued jobs finish, new submissions get 503 — bounded by
// -drain-timeout, after which outstanding jobs are hard-cancelled at
// their next simulated tick boundary.
func runServe(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8321", "listen address")
		queueSize    = fs.Int("queue", 8, "pending-job queue capacity; overflow is refused with 429 + Retry-After")
		jobWorkers   = fs.Int("job-workers", 0, "jobs executed concurrently (0 = GOMAXPROCS)")
		jobTimeout   = fs.Duration("job-timeout", 2*time.Minute, "default per-job deadline (also the cap for per-request timeoutMs)")
		retain       = fs.Int("retain", 64, "finished jobs kept queryable; the oldest beyond this are evicted (-1 = unlimited)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on SIGTERM before jobs are hard-cancelled")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: asyncg serve [-addr host:port] [flags]\n\n")
		fmt.Fprintf(fs.Output(), "API:  POST /v1/jobs            submit an explore job (?wait=1 to block)\n")
		fmt.Fprintf(fs.Output(), "      GET  /v1/jobs[/{id}]     job status\n")
		fmt.Fprintf(fs.Output(), "      GET  /v1/jobs/{id}/stream  live NDJSON progress\n")
		fmt.Fprintf(fs.Output(), "      GET  /v1/jobs/{id}/result  final Result JSON\n")
		fmt.Fprintf(fs.Output(), "      DELETE /v1/jobs/{id}     cancel a job\n")
		fmt.Fprintf(fs.Output(), "      GET  /v1/targets         the explorable target registry\n")
		fmt.Fprintf(fs.Output(), "      GET  /healthz, /metrics\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "serve: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return exitUsage
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	svc := server.New(server.Config{
		QueueSize:       *queueSize,
		Workers:         *jobWorkers,
		JobTimeout:      *jobTimeout,
		MaxFinishedJobs: *retain,
	})
	httpSrv := &http.Server{Handler: svc.Handler()}

	// Listen explicitly so -addr with port 0 works: the banner carries
	// the real bound address, which smoke scripts (and the fleet helper)
	// parse to find the worker.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		svc.Shutdown(context.Background())
		return exitUsage
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "asyncg serve: listening on %s (queue %d, drain %s)\n", ln.Addr(), *queueSize, *drainTimeout)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		svc.Shutdown(context.Background())
		return exitUsage
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Fprintln(os.Stderr, "asyncg serve: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	httpSrv.Shutdown(drainCtx)
	err = svc.Shutdown(drainCtx)
	<-errc // ListenAndServe has returned http.ErrServerClosed
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "asyncg serve: drain timed out; outstanding jobs were cancelled (%v)\n", err)
		return exitFindings
	}
	fmt.Fprintln(os.Stderr, "asyncg serve: drained cleanly")
	return exitOK
}
