// Command acmeair-bench regenerates the paper's Fig. 6: the AcmeAir
// throughput comparison under three instrumentation settings (6a) and
// the per-request async-API usage (6b) — the equivalent of the
// artifact's scripts/figure6.sh.
//
// Usage:
//
//	acmeair-bench                 both figures with the default load
//	acmeair-bench -fig 6a         throughput only
//	acmeair-bench -fig 6b         API usage only
//	acmeair-bench -fig 6b -metrics   plus the observability metrics report
//	acmeair-bench -requests 5000 -clients 32 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"asyncg/internal/acmeair"
	"asyncg/internal/experiments"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "which figure to regenerate: 6a, 6b, or all")
		requests = flag.Int("requests", 0, "total client requests (default from harness)")
		clients  = flag.Int("clients", 0, "concurrent virtual clients")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
		metrics  = flag.Bool("metrics", false, "print the observability metrics report next to Fig. 6b")
	)
	flag.Parse()

	load := experiments.DefaultLoad()
	if *requests > 0 {
		load.Requests = *requests
	}
	if *clients > 0 {
		load.Clients = *clients
	}
	load.Seed = *seed
	load.Data = acmeair.DefaultDataSpec()

	switch *fig {
	case "6a":
		run6a(load)
	case "6b":
		run6b(load, *metrics)
	case "all":
		run6a(load)
		fmt.Println()
		run6b(load, *metrics)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func run6a(load experiments.LoadSpec) {
	fmt.Printf("running AcmeAir: %d requests, %d clients, seed %d\n",
		load.Requests, load.Clients, load.Seed)
	rows, err := experiments.RunFig6a(load)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	experiments.WriteFig6a(os.Stdout, rows)
}

func run6b(load experiments.LoadSpec, metrics bool) {
	row, snapshot, _, err := experiments.RunFig6bDetailed(load)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	experiments.WriteFig6b(os.Stdout, row)
	if metrics {
		fmt.Println()
		if err := snapshot.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
