GO ?= go

.PHONY: verify build vet fmt-check test trace-demo explore-smoke explore-coverage race-explore bench-record bench-gate serve-smoke race-server fleet-smoke race-fleet docs-check

# Tier-1 verify: build, vet, formatting, tests.
verify: build vet fmt-check test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Bounded schedule exploration of two case-study bugs (CI smoke).
# SO-17894000 must yield at least one schedule-dependent ("sometimes")
# warning with a witness token; GH-npm-12754 must stay deterministic
# ("always") under the same perturbations.
explore-smoke:
	$(GO) run ./cmd/asyncg explore -case SO-17894000 -runs 16 -seed 1 -expect-sometimes
	$(GO) run ./cmd/asyncg explore -case GH-npm-12754 -runs 8 -seed 1

# Coverage-guided exploration smoke (CI): the fingerprint-corpus
# strategy on the AcmeAir workload at a fixed seed must keep
# discovering new graph shapes — the run is fully deterministic, so the
# floor of 8 distinct fingerprints is a hard assertion, not a hope.
explore-coverage:
	$(GO) run ./cmd/asyncg explore -acmeair -requests 20 -clients 3 -seed 1 -strategy coverage -runs 24 -min-new-graphs 8

# Parallel-exploration determinism under the race detector: 1-, 2-, and
# 8-worker explores must produce byte-identical Result JSON.
race-explore:
	$(GO) test -race ./internal/explore/...

# End-to-end smoke of the asyncg serve analysis service: boot, health,
# a synchronous explore job, NDJSON stream replay, /metrics, and a
# clean SIGTERM drain.
serve-smoke:
	./scripts/serve_smoke.sh

# End-to-end smoke of the distributed exploration coordinator: two
# local serve workers, a coverage exploration of AcmeAir sharded across
# them (merged NDJSON must be byte-identical to a single-process
# explore), and a kill -9'd coordinator resuming from its journal
# without re-running completed shards.
fleet-smoke:
	./scripts/fleet_smoke.sh

# Fleet coordinator behavior under the race detector: merge equivalence
# for every strategy at varying shard widths, journal round-trip,
# resume-after-cancel, and dead-worker reassignment.
race-fleet:
	$(GO) test -race -count=1 ./internal/fleet/...

# Analysis-service behavior under the race detector: the 200-submission
# overflow load test (queue capacity 8 → 429 + Retry-After), per-job
# deadlines, client-disconnect and DELETE cancellation, graceful drain,
# hard-stop, and goroutine-leak checks.
race-server:
	$(GO) test -race -count=1 ./internal/server/...

# Record the sequential-vs-parallel exploration benchmarks into
# BENCH_explore.json (ns/op, allocs/op, schedules/sec, speedup).
# See EXPERIMENTS.md §Recording benchmarks for the schema.
bench-record:
	$(GO) run ./cmd/asyncg bench -out BENCH_explore.json

# Allocation gate: re-measure the exploration benchmarks quickly (3
# iterations suffice — allocs/op is iteration-stable, unlike ns/op on a
# shared box) and fail if any benchmark's allocs/op regressed more than
# the tolerance past the committed BENCH_explore.json. The fresh
# measurement lands in BENCH_explore.ci.json for CI to upload.
bench-gate:
	$(GO) run ./cmd/asyncg bench -benchtime 3x -out BENCH_explore.ci.json -gate BENCH_explore.json

# Documentation checks: every exported Go declaration carries a doc
# comment (cmd/doclint, stdlib-only) and every relative link in the
# user-facing markdown (README, ARCHITECTURE, DESIGN, EXPERIMENTS,
# ROADMAP, docs/DEBUGGING) resolves to a file on disk.
docs-check:
	./scripts/docs_check.sh

# Regenerate the golden trace fixtures from the deterministic program in
# internal/trace/exporter_test.go, then check they still pass.
trace-demo:
	$(GO) test ./internal/trace -run Golden -update
	$(GO) test ./internal/trace
	@echo "golden traces regenerated under internal/trace/testdata/"
