GO ?= go

.PHONY: verify build vet fmt-check test trace-demo explore-smoke race-explore bench-record

# Tier-1 verify: build, vet, formatting, tests.
verify: build vet fmt-check test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Bounded schedule exploration of two case-study bugs (CI smoke).
# SO-17894000 must yield at least one schedule-dependent ("sometimes")
# warning with a witness token; GH-npm-12754 must stay deterministic
# ("always") under the same perturbations.
explore-smoke:
	$(GO) run ./cmd/asyncg explore -case SO-17894000 -runs 16 -seed 1 -expect-sometimes
	$(GO) run ./cmd/asyncg explore -case GH-npm-12754 -runs 8 -seed 1

# Parallel-exploration determinism under the race detector: 1-, 2-, and
# 8-worker explores must produce byte-identical Result JSON.
race-explore:
	$(GO) test -race ./internal/explore/...

# Record the sequential-vs-parallel exploration benchmarks into
# BENCH_explore.json (ns/op, allocs/op, schedules/sec, speedup).
# See EXPERIMENTS.md §Recording benchmarks for the schema.
bench-record:
	$(GO) run ./cmd/asyncg bench -out BENCH_explore.json

# Regenerate the golden trace fixtures from the deterministic program in
# internal/trace/exporter_test.go, then check they still pass.
trace-demo:
	$(GO) test ./internal/trace -run Golden -update
	$(GO) test ./internal/trace
	@echo "golden traces regenerated under internal/trace/testdata/"
