GO ?= go

.PHONY: verify build vet fmt-check test trace-demo

# Tier-1 verify: build, vet, formatting, tests.
verify: build vet fmt-check test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Regenerate the golden trace fixtures from the deterministic program in
# internal/trace/exporter_test.go, then check they still pass.
trace-demo:
	$(GO) test ./internal/trace -run Golden -update
	$(GO) test ./internal/trace
	@echo "golden traces regenerated under internal/trace/testdata/"
